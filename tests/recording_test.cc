// Tests for stream recording/replay (stream/recording.h).

#include <sstream>

#include "core/disc.h"
#include "eval/equivalence.h"
#include "gtest/gtest.h"
#include "stream/maze_generator.h"
#include "stream/recording.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

std::vector<LabeledPoint> SamplePoints(std::size_t n) {
  MazeGenerator::Options o;
  o.num_seeds = 4;
  o.seed = 121;
  MazeGenerator gen(o);
  return gen.NextBatch(n);
}

TEST(RecordingTest, RoundTripIsBitExact) {
  const std::vector<LabeledPoint> original = SamplePoints(500);
  std::stringstream buffer;
  ASSERT_TRUE(WriteRecording(buffer, original));
  std::vector<LabeledPoint> loaded;
  ASSERT_TRUE(ReadRecording(buffer, &loaded));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].point.id, original[i].point.id);
    EXPECT_EQ(loaded[i].point.dims, original[i].point.dims);
    EXPECT_EQ(loaded[i].true_label, original[i].true_label);
    for (std::uint32_t d = 0; d < original[i].point.dims; ++d) {
      EXPECT_EQ(loaded[i].point.x[d], original[i].point.x[d]);
    }
  }
}

TEST(RecordingTest, FileRoundTrip) {
  const std::vector<LabeledPoint> original = SamplePoints(100);
  const std::string path = ::testing::TempDir() + "/rec_roundtrip.bin";
  ASSERT_TRUE(WriteRecordingFile(path, original));
  std::vector<LabeledPoint> loaded;
  ASSERT_TRUE(ReadRecordingFile(path, &loaded));
  EXPECT_EQ(loaded.size(), original.size());
}

TEST(RecordingTest, RejectsGarbageAndTruncation) {
  std::vector<LabeledPoint> sink = SamplePoints(3);  // Must stay untouched.
  const std::vector<LabeledPoint> copy = sink;
  {
    std::stringstream garbage("this is not a recording");
    EXPECT_FALSE(ReadRecording(garbage, &sink));
  }
  {
    std::stringstream buffer;
    ASSERT_TRUE(WriteRecording(buffer, SamplePoints(50)));
    std::stringstream truncated(buffer.str().substr(0, 100));
    EXPECT_FALSE(ReadRecording(truncated, &sink));
  }
  ASSERT_EQ(sink.size(), copy.size());
  EXPECT_EQ(sink[0].point.id, copy[0].point.id);
}

TEST(RecordingTest, MissingFileFails) {
  std::vector<LabeledPoint> sink;
  EXPECT_FALSE(ReadRecordingFile("/nonexistent/path/stream.bin", &sink));
}

TEST(RecordedSourceTest, ReplaysVerbatim) {
  const std::vector<LabeledPoint> original = SamplePoints(60);
  RecordedSource source(original);
  EXPECT_EQ(source.size(), 60u);
  for (std::size_t i = 0; i < original.size(); ++i) {
    const LabeledPoint lp = source.Next();
    EXPECT_EQ(lp.point.id, original[i].point.id);
    EXPECT_EQ(lp.true_label, original[i].true_label);
  }
  EXPECT_EQ(source.remaining(), 0u);
}

TEST(RecordedSourceTest, ReplayedStreamYieldsIdenticalClustering) {
  // Cluster a live stream and its replayed recording: identical snapshots.
  const std::vector<LabeledPoint> recorded = SamplePoints(600);
  DiscConfig config;
  config.eps = 0.3;
  config.tau = 4;

  Disc live(2, config);
  CountBasedWindow window_a(300, 100);
  std::size_t pos = 0;
  for (int s = 0; s < 6; ++s) {
    std::vector<Point> batch;
    for (int i = 0; i < 100; ++i) batch.push_back(recorded[pos++].point);
    WindowDelta d = window_a.Advance(batch);
    live.Update(d.incoming, d.outgoing);
  }

  RecordedSource source(recorded);
  Disc replayed(2, config);
  CountBasedWindow window_b(300, 100);
  for (int s = 0; s < 6; ++s) {
    WindowDelta d = window_b.Advance(source.NextPoints(100));
    replayed.Update(d.incoming, d.outgoing);
  }

  std::vector<Point> contents(window_a.contents().begin(),
                              window_a.contents().end());
  const EquivalenceResult eq = CheckSameClustering(
      live.Snapshot(), replayed.Snapshot(), contents, config.eps);
  EXPECT_TRUE(eq.ok) << eq.error;
}

}  // namespace
}  // namespace disc
