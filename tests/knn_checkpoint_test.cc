// Tests for the R-tree kNN search, the k-distance parameter estimator, and
// DISC checkpoint save/restore.

#include <algorithm>
#include <sstream>
#include <vector>

#include "core/disc.h"
#include "eval/equivalence.h"
#include "eval/kdistance.h"
#include "gtest/gtest.h"
#include "index/rtree.h"
#include "stream/blobs_generator.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

Point P2(PointId id, double x, double y) {
  Point p;
  p.id = id;
  p.dims = 2;
  p.x[0] = x;
  p.x[1] = y;
  return p;
}

std::vector<Point> RandomPoints(std::size_t n, std::uint32_t dims,
                                double extent, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Point p;
    p.id = i;
    p.dims = dims;
    for (std::uint32_t d = 0; d < dims; ++d) p.x[d] = rng.Uniform(0.0, extent);
    pts.push_back(p);
  }
  return pts;
}

// --- kNN -----------------------------------------------------------------

TEST(RTreeKnnTest, MatchesBruteForceOrdering) {
  const std::vector<Point> pts = RandomPoints(600, 2, 10.0, 31);
  RTree tree(2);
  tree.BulkLoad(pts);
  Rng rng(32);
  for (int q = 0; q < 30; ++q) {
    Point c = P2(90000, rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0));
    const std::size_t k = static_cast<std::size_t>(rng.UniformInt(1, 20));
    const auto got = tree.NearestNeighbors(c, k);
    ASSERT_EQ(got.size(), k);
    // Brute force.
    std::vector<std::pair<double, PointId>> brute;
    for (const Point& p : pts) {
      brute.push_back({std::sqrt(SquaredDistance(p, c)), p.id});
    }
    std::sort(brute.begin(), brute.end());
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_NEAR(got[i].distance, brute[i].first, 1e-9) << "query " << q;
    }
    // Ascending order.
    for (std::size_t i = 1; i < k; ++i) {
      ASSERT_LE(got[i - 1].distance, got[i].distance);
    }
  }
}

TEST(RTreeKnnTest, HandlesKLargerThanTree) {
  RTree tree(2);
  tree.Insert(P2(1, 0.0, 0.0));
  tree.Insert(P2(2, 1.0, 0.0));
  const auto nn = tree.NearestNeighbors(P2(0, 0.0, 0.0), 10);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].id, 1u);
  EXPECT_DOUBLE_EQ(nn[1].distance, 1.0);
}

TEST(RTreeKnnTest, EmptyTreeAndZeroK) {
  RTree tree(2);
  EXPECT_TRUE(tree.NearestNeighbors(P2(0, 0.0, 0.0), 5).empty());
  tree.Insert(P2(1, 0.0, 0.0));
  EXPECT_TRUE(tree.NearestNeighbors(P2(0, 0.0, 0.0), 0).empty());
}

// --- k-distance estimator --------------------------------------------------

TEST(KDistanceTest, GraphIsSortedAndSized) {
  const std::vector<Point> pts = RandomPoints(300, 2, 5.0, 33);
  const std::vector<double> graph = KDistanceGraph(pts, 4);
  ASSERT_EQ(graph.size(), pts.size());
  EXPECT_TRUE(std::is_sorted(graph.begin(), graph.end()));
  EXPECT_GT(graph.front(), 0.0);
}

TEST(KDistanceTest, SamplingCapsWork) {
  const std::vector<Point> pts = RandomPoints(500, 2, 5.0, 34);
  EXPECT_EQ(KDistanceGraph(pts, 4, 100).size(), 100u);
}

TEST(KneeTest, FindsTheElbowOfAHockeyStick) {
  // Flat at 1.0 for 80 points, then sharply rising: knee near index 80.
  std::vector<double> curve;
  for (int i = 0; i < 80; ++i) curve.push_back(1.0 + 0.001 * i);
  for (int i = 0; i < 20; ++i) curve.push_back(1.1 + 0.5 * i);
  const std::size_t knee = KneeIndex(curve);
  EXPECT_GE(knee, 75u);
  EXPECT_LE(knee, 85u);
}

TEST(KDistanceTest, SuggestedEpsSeparatesBlobsFromNoise) {
  // Dense blobs + sparse noise: the suggested eps must be around the
  // blob-internal neighbor distance, far below the noise spacing.
  BlobsGenerator::Options o;
  o.num_blobs = 5;
  o.extent = 10.0;
  o.stddev = 0.2;
  o.noise_fraction = 0.1;
  o.seed = 35;
  BlobsGenerator gen(o);
  const std::vector<Point> pts = gen.NextPoints(2000);
  const ParameterSuggestion s = SuggestParameters(pts, 4);
  EXPECT_EQ(s.tau, 5u);
  EXPECT_GT(s.eps, 0.01);
  EXPECT_LT(s.eps, 1.0);
  // The suggestion must produce a sensible clustering: blobs found.
  DiscConfig config;
  config.eps = s.eps;
  config.tau = s.tau;
  Disc disc(2, config);
  disc.Update(pts, {});
  EXPECT_GE(disc.Snapshot().NumClusters(), 4u);
  EXPECT_LE(disc.Snapshot().NumClusters(), 30u);
}

// --- Checkpointing ----------------------------------------------------------

DiscConfig CheckpointConfig() {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  return config;
}

TEST(CheckpointTest, RoundTripPreservesSnapshotExactly) {
  BlobsGenerator::Options o;
  o.num_blobs = 5;
  o.stddev = 0.3;
  o.drift = 0.04;
  o.noise_fraction = 0.1;
  o.seed = 36;
  BlobsGenerator source(o);
  Disc original(2, CheckpointConfig());
  CountBasedWindow window(500, 100);
  for (int s = 0; s < 8; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(100));
    original.Update(d.incoming, d.outgoing);
  }

  std::stringstream buffer;
  ASSERT_TRUE(original.SaveCheckpoint(buffer).ok());

  Disc restored(2, CheckpointConfig());
  ASSERT_TRUE(restored.LoadCheckpoint(buffer).ok());
  EXPECT_EQ(restored.window_size(), original.window_size());

  // Same labeling, bit for bit (ids, categories, canonical cids).
  std::vector<PointId> ids_a, ids_b;
  std::vector<ClusterId> cids_a, cids_b;
  const ClusteringSnapshot sa = original.Snapshot();
  const ClusteringSnapshot sb = restored.Snapshot();
  ASSERT_EQ(sa.size(), sb.size());
  // Compare via sorted (id -> category/cid) maps.
  std::vector<Point> contents(window.contents().begin(),
                              window.contents().end());
  const EquivalenceResult eq = CheckSameClustering(sa, sb, contents, 0.4);
  EXPECT_TRUE(eq.ok) << eq.error;
}

TEST(CheckpointTest, RestoredInstanceContinuesExactly) {
  BlobsGenerator::Options o;
  o.num_blobs = 4;
  o.stddev = 0.3;
  o.drift = 0.05;
  o.noise_fraction = 0.1;
  o.seed = 37;
  BlobsGenerator source(o);
  Disc original(2, CheckpointConfig());
  CountBasedWindow window(400, 80);
  for (int s = 0; s < 6; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(80));
    original.Update(d.incoming, d.outgoing);
  }
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveCheckpoint(buffer).ok());
  Disc restored(2, CheckpointConfig());
  ASSERT_TRUE(restored.LoadCheckpoint(buffer).ok());

  // Drive both with the same further slides; they must stay equivalent.
  for (int s = 0; s < 6; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(80));
    original.Update(d.incoming, d.outgoing);
    restored.Update(d.incoming, d.outgoing);
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const EquivalenceResult eq = CheckSameClustering(
        original.Snapshot(), restored.Snapshot(), contents, 0.4);
    ASSERT_TRUE(eq.ok) << "slide " << s << ": " << eq.error;
  }
}

TEST(CheckpointTest, RejectsMismatchedConfigOrGarbage) {
  Disc original(2, CheckpointConfig());
  original.Update({P2(1, 1.0, 1.0)}, {});
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveCheckpoint(buffer).ok());

  DiscConfig other = CheckpointConfig();
  other.eps = 0.9;
  Disc wrong_eps(2, other);
  EXPECT_FALSE(wrong_eps.LoadCheckpoint(buffer).ok());

  std::stringstream garbage("not a checkpoint at all");
  Disc fresh(2, CheckpointConfig());
  EXPECT_FALSE(fresh.LoadCheckpoint(garbage).ok());

  std::stringstream truncated(buffer.str().substr(0, 20));
  Disc fresh2(2, CheckpointConfig());
  EXPECT_FALSE(fresh2.LoadCheckpoint(truncated).ok());
}

TEST(CheckpointTest, EmptyClustererRoundTrips) {
  Disc original(3, CheckpointConfig());
  std::stringstream buffer;
  ASSERT_TRUE(original.SaveCheckpoint(buffer).ok());
  Disc restored(3, CheckpointConfig());
  ASSERT_TRUE(restored.LoadCheckpoint(buffer).ok());
  EXPECT_EQ(restored.window_size(), 0u);
  // And it still works afterwards.
  Point p;
  p.id = 1;
  p.dims = 3;
  restored.Update({p}, {});
  EXPECT_EQ(restored.window_size(), 1u);
}

}  // namespace
}  // namespace disc
