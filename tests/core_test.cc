// Unit tests for DISC's support structures (cluster registry) and targeted
// behavioural tests of the Disc clusterer itself: injected split / merge /
// emerge / dissipate scenarios with known outcomes, metrics, event
// reporting, and failure injection.

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "core/cluster_registry.h"
#include "core/disc.h"
#include "core/events.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

TEST(ClusterRegistryTest, NewClustersAreTheirOwnRoots) {
  ClusterRegistry reg;
  const ClusterId a = reg.NewCluster();
  const ClusterId b = reg.NewCluster();
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.Find(a), a);
  EXPECT_EQ(reg.Find(b), b);
}

TEST(ClusterRegistryTest, UnionMergesAndFindResolves) {
  ClusterRegistry reg;
  const ClusterId a = reg.NewCluster();
  const ClusterId b = reg.NewCluster();
  const ClusterId c = reg.NewCluster();
  const ClusterId ab = reg.Union(a, b);
  EXPECT_EQ(reg.Find(a), reg.Find(b));
  EXPECT_EQ(reg.Find(a), ab);
  EXPECT_NE(reg.Find(c), ab);
  reg.Union(b, c);
  EXPECT_EQ(reg.Find(c), reg.Find(a));
}

TEST(ClusterRegistryTest, NoiseMapsToItself) {
  ClusterRegistry reg;
  EXPECT_EQ(reg.Find(kNoiseCluster), kNoiseCluster);
}

TEST(ClusterRegistryTest, ConstFindAgreesWithMutableFind) {
  ClusterRegistry reg;
  std::vector<ClusterId> handles;
  for (int i = 0; i < 20; ++i) handles.push_back(reg.NewCluster());
  for (int i = 1; i < 20; ++i) reg.Union(handles[i - 1], handles[i]);
  const ClusterRegistry& const_reg = reg;
  for (ClusterId h : handles) {
    EXPECT_EQ(const_reg.Find(h), reg.Find(h));
  }
}

TEST(EventsTest, ToStringNamesEveryType) {
  EXPECT_STREQ(ToString(ClusterEventType::kEmerge), "emerge");
  EXPECT_STREQ(ToString(ClusterEventType::kDissipate), "dissipate");
  EXPECT_STREQ(ToString(ClusterEventType::kSplit), "split");
  EXPECT_STREQ(ToString(ClusterEventType::kShrink), "shrink");
  EXPECT_STREQ(ToString(ClusterEventType::kMerge), "merge");
  EXPECT_STREQ(ToString(ClusterEventType::kGrow), "grow");
}

// --- Injected cluster-evolution scenarios -------------------------------

Point P2(PointId id, double x, double y) {
  Point p;
  p.id = id;
  p.dims = 2;
  p.x[0] = x;
  p.x[1] = y;
  return p;
}

// A dense 5-point plus sign centered at (x, y); with eps=0.15 and tau=3 the
// center and arms form one solid cluster.
std::vector<Point> Plus(PointId base, double x, double y) {
  return {P2(base, x, y), P2(base + 1, x + 0.1, y), P2(base + 2, x - 0.1, y),
          P2(base + 3, x, y + 0.1), P2(base + 4, x, y - 0.1)};
}

bool HasEvent(const std::vector<ClusterEvent>& events, ClusterEventType type) {
  return std::any_of(events.begin(), events.end(),
                     [&](const ClusterEvent& e) { return e.type == type; });
}

TEST(DiscScenarioTest, EmergenceAndDissipation) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);

  const std::vector<Point> blob = Plus(0, 1.0, 1.0);
  disc.Update(blob, {});
  EXPECT_TRUE(HasEvent(disc.last_events(), ClusterEventType::kEmerge));
  EXPECT_EQ(disc.Snapshot().NumClusters(), 1u);

  disc.Update({}, blob);
  EXPECT_TRUE(HasEvent(disc.last_events(), ClusterEventType::kDissipate));
  EXPECT_EQ(disc.Snapshot().NumClusters(), 0u);
  EXPECT_EQ(disc.window_size(), 0u);
}

TEST(DiscScenarioTest, BridgeRemovalSplitsCluster) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);

  // Two plus-blobs connected by a chain of bridge points.
  std::vector<Point> initial = Plus(0, 1.0, 1.0);
  const std::vector<Point> right = Plus(100, 1.6, 1.0);
  initial.insert(initial.end(), right.begin(), right.end());
  std::vector<Point> bridge = {P2(200, 1.2, 1.0), P2(201, 1.3, 1.0),
                               P2(202, 1.4, 1.0)};
  initial.insert(initial.end(), bridge.begin(), bridge.end());
  disc.Update(initial, {});
  ASSERT_EQ(disc.Snapshot().NumClusters(), 1u);

  // Removing the bridge must split the cluster in two.
  disc.Update({}, bridge);
  EXPECT_TRUE(HasEvent(disc.last_events(), ClusterEventType::kSplit));
  EXPECT_EQ(disc.Snapshot().NumClusters(), 2u);
}

TEST(DiscScenarioTest, BridgeInsertionMergesClusters) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);

  std::vector<Point> initial = Plus(0, 1.0, 1.0);
  const std::vector<Point> right = Plus(100, 1.6, 1.0);
  initial.insert(initial.end(), right.begin(), right.end());
  disc.Update(initial, {});
  ASSERT_EQ(disc.Snapshot().NumClusters(), 2u);

  disc.Update({P2(200, 1.2, 1.0), P2(201, 1.3, 1.0), P2(202, 1.4, 1.0)}, {});
  EXPECT_TRUE(HasEvent(disc.last_events(), ClusterEventType::kMerge));
  EXPECT_EQ(disc.Snapshot().NumClusters(), 1u);
}

TEST(DiscScenarioTest, ThreeWaySplitReportsAllFragments) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);

  // Three blobs joined through a central hub point chain.
  std::vector<Point> initial;
  for (int b = 0; b < 3; ++b) {
    const double angle = 2.0 * 3.14159265 * b / 3.0;
    const std::vector<Point> blob =
        Plus(100 * b, 1.0 + 0.5 * std::cos(angle), 1.0 + 0.5 * std::sin(angle));
    initial.insert(initial.end(), blob.begin(), blob.end());
  }
  std::vector<Point> hub;
  for (int b = 0; b < 3; ++b) {
    const double angle = 2.0 * 3.14159265 * b / 3.0;
    for (int k = 1; k <= 3; ++k) {
      hub.push_back(P2(1000 + b * 10 + k, 1.0 + 0.125 * k * std::cos(angle),
                       1.0 + 0.125 * k * std::sin(angle)));
    }
  }
  hub.push_back(P2(2000, 1.0, 1.0));
  std::vector<Point> all = initial;
  all.insert(all.end(), hub.begin(), hub.end());
  disc.Update(all, {});
  ASSERT_EQ(disc.Snapshot().NumClusters(), 1u);

  disc.Update({}, hub);
  EXPECT_EQ(disc.Snapshot().NumClusters(), 3u);
  bool found_split = false;
  for (const ClusterEvent& e : disc.last_events()) {
    if (e.type == ClusterEventType::kSplit) {
      found_split = true;
      EXPECT_EQ(e.cids.size(), 3u);  // Survivor + two detached fragments.
    }
  }
  EXPECT_TRUE(found_split);
}

TEST(DiscScenarioTest, ShrinkAndGrowWithoutTopologyChange) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);

  std::vector<Point> blob = Plus(0, 1.0, 1.0);
  std::vector<Point> extra = {P2(50, 1.1, 1.1), P2(51, 0.9, 1.1)};
  std::vector<Point> all = blob;
  all.insert(all.end(), extra.begin(), extra.end());
  disc.Update(all, {});
  ASSERT_EQ(disc.Snapshot().NumClusters(), 1u);

  disc.Update({}, extra);  // Lose mass but stay connected.
  EXPECT_TRUE(HasEvent(disc.last_events(), ClusterEventType::kShrink));
  EXPECT_EQ(disc.Snapshot().NumClusters(), 1u);

  disc.Update({P2(60, 1.1, 0.9)}, {});  // Gain mass in the same cluster.
  EXPECT_TRUE(HasEvent(disc.last_events(), ClusterEventType::kGrow));
  EXPECT_EQ(disc.Snapshot().NumClusters(), 1u);
}

TEST(DiscScenarioTest, SurvivingClusterKeepsItsIdAcrossShrink) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  std::vector<Point> blob = Plus(0, 1.0, 1.0);
  std::vector<Point> extra = {P2(50, 1.1, 1.1)};
  std::vector<Point> all = blob;
  all.insert(all.end(), extra.begin(), extra.end());
  disc.Update(all, {});
  const ClusteringSnapshot before = disc.Snapshot();
  disc.Update({}, extra);
  const ClusteringSnapshot after = disc.Snapshot();
  // The cid of a core that stayed core must be stable (identity tracking).
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before.ids[i] != 0) continue;
    for (std::size_t j = 0; j < after.size(); ++j) {
      if (after.ids[j] != 0) continue;
      EXPECT_EQ(before.cids[i], after.cids[j]);
    }
  }
}

// --- Robustness / failure injection -------------------------------------

// These two ran only under NDEBUG while the misuse paths carried asserts;
// Disc now warns-and-rejects in every build, so the ASan/TSan (Debug)
// presets run the full suite.
TEST(DiscRobustnessTest, InvalidIncomingPointsAreRejected) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  Point bad = P2(1, 0.0, 0.0);
  bad.x[0] = std::nan("");
  disc.Update({bad, P2(2, 1.0, 1.0)}, {});
  EXPECT_EQ(disc.window_size(), 1u);  // Only the valid point entered.
}

TEST(DiscRobustnessTest, UnknownOutgoingPointsAreIgnored) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  disc.Update({P2(1, 1.0, 1.0)}, {});
  disc.Update({}, {P2(99, 5.0, 5.0)});  // Never inserted.
  EXPECT_EQ(disc.window_size(), 1u);
}

TEST(DiscRobustnessTest, EmptyUpdateIsANoOp) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  disc.Update(Plus(0, 1.0, 1.0), {});
  const ClusteringSnapshot before = disc.Snapshot();
  disc.Update({}, {});
  const ClusteringSnapshot after = disc.Snapshot();
  EXPECT_EQ(before.size(), after.size());
  EXPECT_EQ(disc.last_metrics().range_searches, 0u);
  EXPECT_TRUE(disc.last_events().empty());
}

TEST(DiscMetricsTest, CollectSearchesMatchDeltaSizes) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  disc.Update(Plus(0, 1.0, 1.0), {});
  // COLLECT issues exactly one search per incoming and one per outgoing
  // point.
  EXPECT_EQ(disc.last_metrics().collect_searches, 5u);
  disc.Update({P2(10, 4.0, 4.0)}, {P2(4, 1.0, 0.9)});
  EXPECT_EQ(disc.last_metrics().collect_searches, 2u);
}

TEST(DiscMetricsTest, TauOneMakesEveryPointACore) {
  DiscConfig config;
  config.eps = 0.5;
  config.tau = 1;
  Disc disc(2, config);
  disc.Update({P2(0, 0.0, 0.0), P2(1, 10.0, 10.0)}, {});
  const ClusteringSnapshot snap = disc.Snapshot();
  EXPECT_EQ(snap.NumClusters(), 2u);
  for (Category c : snap.categories) EXPECT_EQ(c, Category::kCore);
}


// --- Single-point API and label deltas -----------------------------------

TEST(DiscDeltaTest, InsertRemoveConvenienceWrappers) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  for (const Point& p : Plus(0, 1.0, 1.0)) disc.Insert(p);
  EXPECT_EQ(disc.window_size(), 5u);
  EXPECT_EQ(disc.Snapshot().NumClusters(), 1u);
  disc.Remove(P2(0, 1.0, 1.0));
  EXPECT_EQ(disc.window_size(), 4u);
}

TEST(DiscDeltaTest, EnteredAndExitedMirrorTheUpdate) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  const std::vector<Point> blob = Plus(0, 1.0, 1.0);
  disc.Update(blob, {});
  EXPECT_EQ(disc.last_delta().entered.size(), 5u);
  EXPECT_TRUE(disc.last_delta().exited.empty());
  // New points are reported as entered, never double-counted as relabeled.
  for (PointId id : disc.last_delta().relabeled) {
    for (PointId entered : disc.last_delta().entered) {
      EXPECT_NE(id, entered);
    }
  }
  disc.Update({}, {blob[0]});
  EXPECT_EQ(disc.last_delta().exited.size(), 1u);
  EXPECT_EQ(disc.last_delta().exited[0], blob[0].id);
}

TEST(DiscDeltaTest, RelabeledListsDemotedSurvivors) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  std::vector<Point> blob = Plus(0, 1.0, 1.0);
  disc.Update(blob, {});
  // Removing two arm points demotes the remaining arms (2 neighbors < tau)
  // from core to border; the center keeps its core status and cluster id.
  disc.Update({}, {blob[3], blob[4]});
  EXPECT_EQ(disc.last_delta().relabeled.size(), 2u);
}

TEST(DiscDeltaTest, UntouchedPointsAreNotRelabeled) {
  DiscConfig config;
  config.eps = 0.15;
  config.tau = 3;
  Disc disc(2, config);
  disc.Update(Plus(0, 1.0, 1.0), {});
  // A far-away noise point appears: the existing cluster is untouched.
  disc.Update({P2(99, 8.0, 8.0)}, {});
  EXPECT_TRUE(disc.last_delta().relabeled.empty());
  EXPECT_EQ(disc.last_delta().entered.size(), 1u);
}

TEST(DiscDeltaTest, DeltaMatchesSnapshotDifference) {
  // Property: on a random stream, the set of points whose *resolved* label
  // changed between consecutive snapshots is covered by relabeled + entered
  // + exited + the clusters merged in events.
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  Disc disc(2, config);
  BlobsGenerator::Options o;
  o.num_blobs = 4;
  o.stddev = 0.3;
  o.drift = 0.05;
  o.noise_fraction = 0.1;
  o.seed = 77;
  BlobsGenerator source(o);
  CountBasedWindow window(400, 80);

  auto labeling = [&] {
    std::map<PointId, std::pair<Category, ClusterId>> m;
    const ClusteringSnapshot s = disc.Snapshot();
    for (std::size_t i = 0; i < s.size(); ++i) {
      m[s.ids[i]] = {s.categories[i], s.cids[i]};
    }
    return m;
  };

  std::map<PointId, std::pair<Category, ClusterId>> prev;
  for (int s = 0; s < 12; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(80));
    disc.Update(d.incoming, d.outgoing);
    auto curr = labeling();
    std::set<PointId> allowed(disc.last_delta().relabeled.begin(),
                              disc.last_delta().relabeled.end());
    for (PointId id : disc.last_delta().entered) allowed.insert(id);
    // Canonical ids can change for whole clusters via merges/splits without
    // touching member records; collect the cids involved in this update's
    // events and exempt their members.
    std::set<ClusterId> shifted;
    for (const ClusterEvent& e : disc.last_events()) {
      for (ClusterId c : e.cids) shifted.insert(c);
    }
    for (const auto& [id, label] : curr) {
      auto pit = prev.find(id);
      if (pit == prev.end()) {
        EXPECT_TRUE(allowed.count(id)) << "unreported appearance of " << id;
        continue;
      }
      if (pit->second == label) continue;
      const bool reported = allowed.count(id) > 0;
      const bool cid_shift = shifted.count(label.second) > 0 ||
                             shifted.count(pit->second.second) > 0;
      EXPECT_TRUE(reported || cid_shift)
          << "slide " << s << ": unreported label change of point " << id;
    }
    prev = std::move(curr);
  }
}

}  // namespace
}  // namespace disc
