#include <vector>

#include "eval/ari.h"
#include "eval/equivalence.h"
#include "eval/partition.h"
#include "eval/table.h"
#include "gtest/gtest.h"

namespace disc {
namespace {

TEST(AriTest, IdenticalPartitionsScoreOne) {
  const std::vector<ClusterId> a = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, a), 1.0);
}

TEST(AriTest, RenamedPartitionsScoreOne) {
  const std::vector<ClusterId> a = {0, 0, 1, 1, 2, 2};
  const std::vector<ClusterId> b = {7, 7, 3, 3, 9, 9};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
}

TEST(AriTest, KnownValueFromLiterature) {
  // Classic example: ARI of these two partitions of 6 items is 0.24242...
  const std::vector<ClusterId> a = {0, 0, 0, 1, 1, 1};
  const std::vector<ClusterId> b = {0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(AdjustedRandIndex(a, b), 0.242424, 1e-5);
}

TEST(AriTest, IndependentPartitionsScoreNearZero) {
  // A checkerboard split carries no information about the block split.
  std::vector<ClusterId> a, b;
  for (int i = 0; i < 400; ++i) {
    a.push_back(i % 2);
    b.push_back(i < 200 ? 0 : 1);
  }
  EXPECT_NEAR(AdjustedRandIndex(a, b), 0.0, 0.02);
}

TEST(AriTest, EmptyInputScoresOne) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({}, {}), 1.0);
}

TEST(AriTest, SymmetricInArguments) {
  const std::vector<ClusterId> a = {0, 1, 1, 2, 2, 2, -1, -1};
  const std::vector<ClusterId> b = {0, 0, 1, 1, 2, 2, 2, -1};
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), AdjustedRandIndex(b, a));
}

ClusteringSnapshot MakeSnapshot(
    std::vector<PointId> ids, std::vector<Category> cats,
    std::vector<ClusterId> cids) {
  ClusteringSnapshot s;
  s.ids = std::move(ids);
  s.categories = std::move(cats);
  s.cids = std::move(cids);
  return s;
}

TEST(PartitionTest, CanonicalizeIsStableUnderRenamingAndOrder) {
  const auto a = MakeSnapshot({3, 1, 2}, {Category::kCore, Category::kCore,
                                          Category::kNoise},
                              {5, 9, kNoiseCluster});
  const auto b = MakeSnapshot({1, 2, 3}, {Category::kCore, Category::kNoise,
                                          Category::kCore},
                              {100, kNoiseCluster, 42});
  std::vector<PointId> ids_a, ids_b;
  std::vector<ClusterId> cids_a, cids_b;
  Canonicalize(a, &ids_a, &cids_a);
  Canonicalize(b, &ids_b, &cids_b);
  EXPECT_EQ(ids_a, ids_b);
  EXPECT_EQ(cids_a, cids_b);
}

TEST(PartitionTest, LabelsForHandlesMissingIds) {
  const auto snap = MakeSnapshot({1, 2}, {Category::kCore, Category::kCore},
                                 {4, 4});
  const std::vector<ClusterId> labels = LabelsFor(snap, {2, 99, 1});
  EXPECT_EQ(labels, (std::vector<ClusterId>{4, kNoiseCluster, 4}));
}

TEST(NumClustersTest, CountsDistinctNonNoise) {
  const auto snap = MakeSnapshot(
      {1, 2, 3, 4},
      {Category::kCore, Category::kBorder, Category::kNoise, Category::kCore},
      {7, 7, kNoiseCluster, 9});
  EXPECT_EQ(snap.NumClusters(), 2u);
}

Point P2(PointId id, double x, double y) {
  Point p;
  p.id = id;
  p.dims = 2;
  p.x[0] = x;
  p.x[1] = y;
  return p;
}

TEST(EquivalenceTest, AcceptsRenamedClusters) {
  const std::vector<Point> pts = {P2(0, 0, 0), P2(1, 0.1, 0), P2(2, 0.2, 0)};
  const auto a = MakeSnapshot(
      {0, 1, 2}, {Category::kCore, Category::kCore, Category::kCore},
      {5, 5, 5});
  const auto b = MakeSnapshot(
      {0, 1, 2}, {Category::kCore, Category::kCore, Category::kCore},
      {11, 11, 11});
  EXPECT_TRUE(CheckSameClustering(a, b, pts, 0.15).ok);
}

TEST(EquivalenceTest, RejectsCategoryMismatch) {
  const std::vector<Point> pts = {P2(0, 0, 0), P2(1, 0.1, 0)};
  const auto a = MakeSnapshot({0, 1}, {Category::kCore, Category::kCore},
                              {1, 1});
  const auto b = MakeSnapshot({0, 1}, {Category::kCore, Category::kBorder},
                              {1, 1});
  const EquivalenceResult r = CheckSameClustering(a, b, pts, 0.15);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("category"), std::string::npos);
}

TEST(EquivalenceTest, RejectsCorePartitionMismatch) {
  const std::vector<Point> pts = {P2(0, 0, 0), P2(1, 0.1, 0), P2(2, 5, 5),
                                  P2(3, 5.1, 5)};
  const auto cats = std::vector<Category>(4, Category::kCore);
  const auto a = MakeSnapshot({0, 1, 2, 3}, cats, {1, 1, 2, 2});
  const auto b = MakeSnapshot({0, 1, 2, 3}, cats, {1, 1, 1, 1});
  EXPECT_FALSE(CheckSameClustering(a, b, pts, 0.15).ok);
}

TEST(EquivalenceTest, AcceptsBorderTieBreaks) {
  // Border point 2 sits between two cores of different clusters; either
  // cluster id is a valid DBSCAN outcome.
  const std::vector<Point> pts = {P2(0, 0, 0), P2(1, 0.2, 0), P2(2, 0.1, 0)};
  const auto cats = std::vector<Category>{Category::kCore, Category::kCore,
                                          Category::kBorder};
  const auto a = MakeSnapshot({0, 1, 2}, cats, {1, 2, 1});
  const auto b = MakeSnapshot({0, 1, 2}, cats, {1, 2, 2});
  EXPECT_TRUE(CheckSameClustering(a, b, pts, 0.12).ok);
}

TEST(EquivalenceTest, RejectsUnjustifiedBorderLabel) {
  // Border 2 is adjacent only to core 0 (cluster 1); labeling it cluster 2
  // is wrong in either snapshot.
  const std::vector<Point> pts = {P2(0, 0, 0), P2(1, 9, 9), P2(2, 0.1, 0)};
  const auto cats = std::vector<Category>{Category::kCore, Category::kCore,
                                          Category::kBorder};
  const auto a = MakeSnapshot({0, 1, 2}, cats, {1, 2, 2});
  const auto b = MakeSnapshot({0, 1, 2}, cats, {1, 2, 1});
  EXPECT_FALSE(CheckSameClustering(a, b, pts, 0.12).ok);
}

TEST(TableTest, AlignsColumnsAndEmitsCsv) {
  Table t({"name", "value"});
  t.AddRow({"alpha", Table::Num(1.5, 1)});
  t.AddRow({"b", "x"});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_EQ(t.ToCsv(), "name,value\nalpha,1.5\nb,x\n");
}

}  // namespace
}  // namespace disc
