// Differential fuzzing for DISC: adversarial randomized streams engineered
// to trigger the hard paths — elongated clusters shedding interior segments
// (multi-group splits of one cluster per slide), survivor reconciliation,
// mass dissipation, and rapid re-merging. Every slide is compared against
// fresh DBSCAN.

#include <memory>
#include <vector>

#include "baselines/dbscan.h"
#include "common/rng.h"
#include "core/disc.h"
#include "eval/equivalence.h"
#include "gtest/gtest.h"
#include "stream/maze_generator.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

// A stream drawn from segments of a jagged polyline: windowed snapshots are
// long thin chains that break into several pieces at once when interior
// stretches rotate out of the window — the worst case for the ex-core phase.
class PolylineStream : public StreamSource {
 public:
  PolylineStream(int num_chains, std::uint64_t seed)
      : rng_(seed), num_chains_(num_chains) {
    for (int c = 0; c < num_chains_; ++c) {
      anchors_.push_back({rng_.Uniform(0.0, 30.0), rng_.Uniform(0.0, 30.0)});
      headings_.push_back(rng_.Uniform(0.0, 6.28318));
      offsets_.push_back(0.0);
    }
  }

  LabeledPoint Next() override {
    // Emit along chain c at a position that sweeps forward, with occasional
    // jumps that leave density gaps (future split points).
    const int c = static_cast<int>(rng_.UniformInt(0, num_chains_ - 1));
    offsets_[c] += rng_.Bernoulli(0.02) ? rng_.Uniform(0.5, 1.5)
                                        : rng_.Uniform(0.0, 0.05);
    if (rng_.Bernoulli(0.01)) {
      headings_[c] += rng_.Uniform(-1.0, 1.0);
    }
    LabeledPoint lp;
    lp.point.id = TakeId();
    lp.point.dims = 2;
    lp.point.x[0] = anchors_[c].first +
                    offsets_[c] * std::cos(headings_[c]) +
                    rng_.Normal(0.0, 0.03);
    lp.point.x[1] = anchors_[c].second +
                    offsets_[c] * std::sin(headings_[c]) +
                    rng_.Normal(0.0, 0.03);
    lp.true_label = c;
    return lp;
  }

 private:
  Rng rng_;
  int num_chains_;
  std::vector<std::pair<double, double>> anchors_;
  std::vector<double> headings_;
  std::vector<double> offsets_;
};

// Every fuzz scenario also drives a twin instance whose config differs only
// in num_threads. Beyond matching the DBSCAN oracle, the twin must stay
// byte-identical to the single-threaded instance — the configs agree on
// everything semantic, so any divergence is a determinism bug in the
// parallel COLLECT/CLUSTER machinery.
void ExpectTwinIdentical(const Disc& base, const Disc& twin,
                         std::uint64_t seed, int slide) {
  const ClusteringSnapshot a = base.Snapshot();
  const ClusteringSnapshot b = twin.Snapshot();
  ASSERT_TRUE(a.ids == b.ids && a.categories == b.categories &&
              a.cids == b.cids)
      << "seed " << seed << " slide " << slide
      << ": num_threads=4 twin snapshot diverged from num_threads=1";
}

class DiscFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiscFuzzTest, PolylineChainsStayExact) {
  const std::uint64_t seed = GetParam();
  DiscConfig config;
  config.eps = 0.2;
  config.tau = 4;
  // Alternate optimization settings across seeds for breadth.
  config.use_msbfs = (seed % 2) == 0;
  config.use_epoch_probing = (seed % 3) != 0;
  config.parallel_cluster = (seed % 4) < 2;
  Disc disc(2, config);
  DiscConfig par_config = config;
  par_config.num_threads = 4;
  Disc par_disc(2, par_config);
  PolylineStream source(4, seed);
  CountBasedWindow window(800, 160);
  for (int s = 0; s < 15; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(160));
    disc.Update(d.incoming, d.outgoing);
    par_disc.Update(d.incoming, d.outgoing);
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const DbscanResult truth = RunDbscan(contents, config.eps, config.tau);
    const EquivalenceResult eq = CheckSameClustering(
        disc.Snapshot(), truth.snapshot, contents, config.eps);
    ASSERT_TRUE(eq.ok) << "seed " << seed << " slide " << s << ": "
                       << eq.error;
    const EquivalenceResult par_eq = CheckSameClustering(
        par_disc.Snapshot(), truth.snapshot, contents, config.eps);
    ASSERT_TRUE(par_eq.ok) << "seed " << seed << " slide " << s
                           << " (num_threads=4): " << par_eq.error;
    ExpectTwinIdentical(disc, par_disc, seed, s);
  }
}

TEST_P(DiscFuzzTest, RandomChurnStaysExact) {
  // Pure random insert/delete churn through Update batches of varying size,
  // including empty batches and full turnovers.
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7919 + 13);
  DiscConfig config;
  config.eps = 0.25;
  config.tau = 3 + static_cast<std::uint32_t>(seed % 3);
  Disc disc(2, config);
  DiscConfig par_config = config;
  par_config.num_threads = 4;
  Disc par_disc(2, par_config);
  std::vector<Point> live;
  PointId next_id = 0;
  for (int round = 0; round < 25; ++round) {
    std::vector<Point> incoming;
    std::vector<Point> outgoing;
    const int ins = static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < ins; ++i) {
      Point p;
      p.id = next_id++;
      p.dims = 2;
      // Clumpy space: half the mass in a few dense cells.
      if (rng.Bernoulli(0.5)) {
        const double cx = 0.3 * static_cast<double>(rng.UniformInt(0, 4));
        p.x[0] = cx + rng.Uniform(0.0, 0.2);
        p.x[1] = cx + rng.Uniform(0.0, 0.2);
      } else {
        p.x[0] = rng.Uniform(0.0, 2.0);
        p.x[1] = rng.Uniform(0.0, 2.0);
      }
      incoming.push_back(p);
      live.push_back(p);
    }
    const int dels =
        static_cast<int>(rng.UniformInt(0, static_cast<std::int64_t>(
                                               live.size() - incoming.size())));
    for (int i = 0; i < dels; ++i) {
      const std::size_t victim = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      // Avoid deleting a point inserted in this same batch.
      bool fresh = false;
      for (const Point& p : incoming) {
        if (p.id == live[victim].id) {
          fresh = true;
          break;
        }
      }
      if (fresh) continue;
      outgoing.push_back(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }
    disc.Update(incoming, outgoing);
    par_disc.Update(incoming, outgoing);
    ASSERT_EQ(disc.window_size(), live.size());
    const DbscanResult truth = RunDbscan(live, config.eps, config.tau);
    const EquivalenceResult eq =
        CheckSameClustering(disc.Snapshot(), truth.snapshot, live, config.eps);
    ASSERT_TRUE(eq.ok) << "seed " << seed << " round " << round << ": "
                       << eq.error;
    const EquivalenceResult par_eq = CheckSameClustering(
        par_disc.Snapshot(), truth.snapshot, live, config.eps);
    ASSERT_TRUE(par_eq.ok) << "seed " << seed << " round " << round
                           << " (num_threads=4): " << par_eq.error;
    ExpectTwinIdentical(disc, par_disc, seed, round);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 12));

// The Maze at interlocking density is another multi-split workhorse: long
// thin trajectories with tails expiring every slide.
TEST(DiscFuzzTest, DenseMazeLongRun) {
  DiscConfig config;
  config.eps = 0.12;
  config.tau = 5;
  Disc disc(2, config);
  MazeGenerator::Options o;
  o.num_seeds = 12;
  o.extent = 8.0;  // Crowded: trajectories constantly touch and part.
  o.step = 0.06;
  o.jitter = 0.02;
  o.points_per_step = 3;
  o.seed = 71;
  MazeGenerator source(o);
  DiscConfig par_config = config;
  par_config.num_threads = 4;
  Disc par_disc(2, par_config);
  CountBasedWindow window(1200, 120);
  for (int s = 0; s < 30; ++s) {
    WindowDelta d = window.Advance(source.NextPoints(120));
    disc.Update(d.incoming, d.outgoing);
    par_disc.Update(d.incoming, d.outgoing);
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const DbscanResult truth = RunDbscan(contents, config.eps, config.tau);
    const EquivalenceResult eq = CheckSameClustering(
        disc.Snapshot(), truth.snapshot, contents, config.eps);
    ASSERT_TRUE(eq.ok) << "slide " << s << ": " << eq.error;
    const EquivalenceResult par_eq = CheckSameClustering(
        par_disc.Snapshot(), truth.snapshot, contents, config.eps);
    ASSERT_TRUE(par_eq.ok) << "slide " << s << " seed 71 (num_threads=4): "
                           << par_eq.error;
    ExpectTwinIdentical(disc, par_disc, /*seed=*/71, s);
  }
}

}  // namespace
}  // namespace disc
