// Tests for the extended quality metrics (purity, NMI, pairwise F1) against
// hand-computed values and structural properties.

#include <vector>

#include "eval/ari.h"
#include "eval/quality.h"
#include "gtest/gtest.h"

namespace disc {
namespace {

const std::vector<ClusterId> kPerfectA = {0, 0, 1, 1, 2, 2};
const std::vector<ClusterId> kPerfectB = {5, 5, 9, 9, 7, 7};

TEST(PurityTest, PerfectMatchScoresOne) {
  EXPECT_DOUBLE_EQ(Purity(kPerfectA, kPerfectB), 1.0);
}

TEST(PurityTest, HandComputedMixedClusters) {
  // Cluster 0 holds labels {a, a, b} -> majority 2; cluster 1 holds {b, b,
  // a} -> majority 2. Purity = 4/6.
  const std::vector<ClusterId> pred = {0, 0, 0, 1, 1, 1};
  const std::vector<ClusterId> truth = {10, 10, 20, 20, 20, 10};
  EXPECT_NEAR(Purity(pred, truth), 4.0 / 6.0, 1e-12);
}

TEST(PurityTest, AllSingletonsScoreOne) {
  const std::vector<ClusterId> pred = {0, 1, 2, 3};
  const std::vector<ClusterId> truth = {9, 9, 9, 9};
  // Singleton clusters are trivially pure (purity ignores over-segmentation).
  EXPECT_DOUBLE_EQ(Purity(pred, truth), 1.0);
}

TEST(PurityTest, EmptyInputScoresOne) {
  EXPECT_DOUBLE_EQ(Purity({}, {}), 1.0);
}

TEST(NmiTest, PerfectMatchScoresOne) {
  EXPECT_NEAR(NormalizedMutualInformation(kPerfectA, kPerfectB), 1.0, 1e-12);
}

TEST(NmiTest, TrivialPartitions) {
  const std::vector<ClusterId> one_cluster = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(one_cluster, one_cluster), 1.0);
  const std::vector<ClusterId> split = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(one_cluster, split), 0.0);
}

TEST(NmiTest, IndependentPartitionsScoreLow) {
  std::vector<ClusterId> a, b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(i % 2);
    b.push_back(i < 500 ? 0 : 1);
  }
  EXPECT_LT(NormalizedMutualInformation(a, b), 0.05);
}

TEST(NmiTest, SymmetricInArguments) {
  const std::vector<ClusterId> a = {0, 0, 1, 1, 2, 2, 2};
  const std::vector<ClusterId> b = {0, 1, 1, 1, 2, 2, 0};
  EXPECT_NEAR(NormalizedMutualInformation(a, b),
              NormalizedMutualInformation(b, a), 1e-12);
}

TEST(PairwiseF1Test, PerfectMatchScoresOne) {
  const PairCounts pc = PairwiseF1(kPerfectA, kPerfectB);
  EXPECT_DOUBLE_EQ(pc.precision, 1.0);
  EXPECT_DOUBLE_EQ(pc.recall, 1.0);
  EXPECT_DOUBLE_EQ(pc.f1, 1.0);
}

TEST(PairwiseF1Test, HandComputedMerge) {
  // Prediction merges two true clusters of 2: pairs_in_pred = C(4,2) = 6,
  // pairs_in_truth = 2, both = 2 -> precision 1/3, recall 1.
  const std::vector<ClusterId> pred = {0, 0, 0, 0};
  const std::vector<ClusterId> truth = {1, 1, 2, 2};
  const PairCounts pc = PairwiseF1(pred, truth);
  EXPECT_NEAR(pc.precision, 2.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(pc.recall, 1.0);
  EXPECT_NEAR(pc.f1, 0.5, 1e-12);
}

TEST(PairwiseF1Test, HandComputedSplit) {
  // Prediction splits one true cluster of 4 into two pairs: precision 1,
  // recall 2/6.
  const std::vector<ClusterId> pred = {1, 1, 2, 2};
  const std::vector<ClusterId> truth = {0, 0, 0, 0};
  const PairCounts pc = PairwiseF1(pred, truth);
  EXPECT_DOUBLE_EQ(pc.precision, 1.0);
  EXPECT_NEAR(pc.recall, 2.0 / 6.0, 1e-12);
}

TEST(QualityConsistencyTest, AllMetricsAgreeOnPerfectAndAwful) {
  // Perfect labelings score 1 everywhere; a maximally-merged prediction on a
  // many-cluster truth scores low on ARI/NMI but has recall 1.
  std::vector<ClusterId> truth, perfect, merged;
  for (int i = 0; i < 300; ++i) {
    truth.push_back(i / 30);
    perfect.push_back(100 + i / 30);
    merged.push_back(0);
  }
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(perfect, truth), 1.0);
  EXPECT_DOUBLE_EQ(Purity(perfect, truth), 1.0);
  EXPECT_NEAR(NormalizedMutualInformation(perfect, truth), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PairwiseF1(perfect, truth).f1, 1.0);

  EXPECT_NEAR(AdjustedRandIndex(merged, truth), 0.0, 0.01);
  EXPECT_NEAR(Purity(merged, truth), 0.1, 0.01);
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation(merged, truth), 0.0);
  EXPECT_DOUBLE_EQ(PairwiseF1(merged, truth).recall, 1.0);
}

}  // namespace
}  // namespace disc
