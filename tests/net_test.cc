// Ingest/query plane tests (ctest -L net): the wire codec, the framed TCP
// server in front of DiscEngine, and the contracts docs/API.md §net
// states:
//
//   * a multi-session socket-fed run is byte-identical (canonical
//     snapshots AND checkpoint bytes) to the same run in-process, for
//     worker-lane counts 1/2/4, including across checkpoint → kill →
//     Open → resume;
//   * backpressure is explicit: a full admission queue answers kBusy
//     (counted in net_busy_rejections_total), never a silent drop;
//   * every malformed input — truncation at each header boundary, CRC
//     bit flips, oversized length prefixes, byte-trickled and stalled
//     frames — yields a descriptive error frame or a clean disconnect,
//     never a crash or a partial admission.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/socket_util.h"
#include "engine/disc_engine.h"
#include "gtest/gtest.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "net/wire.h"
#include "obs/http_server.h"
#include "obs/metrics_registry.h"
#include "stream/blobs_generator.h"

namespace disc {
namespace net {
namespace {

constexpr std::size_t kWindow = 120;
constexpr std::size_t kStride = 30;

CreateSessionRequest TestSessionRequest(const std::string& name) {
  CreateSessionRequest request;
  request.name = name;
  request.method = "DISC";
  request.dims = 2;
  request.window_size = kWindow;
  request.stride = kStride;
  request.eps = 0.4;
  request.tau = 5;
  return request;
}

// The exact mapping IngestServer::Dispatch applies, so in-process
// reference runs host identical sessions.
SessionOptions ToSessionOptions(const CreateSessionRequest& request) {
  SessionOptions options;
  options.method = request.method;
  options.spec.dims = request.dims;
  options.spec.window_size = request.window_size;
  options.spec.stride = request.stride;
  options.spec.disc.eps = request.eps;
  options.spec.disc.tau = request.tau;
  return options;
}

std::vector<std::vector<Point>> MakeSlides(std::uint64_t seed,
                                           std::size_t num_slides) {
  BlobsGenerator::Options o;
  o.dims = 2;
  o.num_blobs = 4;
  o.extent = 8.0;
  o.stddev = 0.3;
  o.noise_fraction = 0.1;
  o.drift = 0.05;
  o.seed = seed;
  BlobsGenerator gen(o);
  std::vector<std::vector<Point>> slides(num_slides);
  for (auto& slide : slides) slide = gen.NextPoints(kStride);
  return slides;
}

std::string SpillDir(const std::string& leaf) {
  const std::string dir = testing::TempDir() + "disc_net_" + leaf;
  std::filesystem::remove_all(dir);
  return dir;
}

std::map<std::string, std::string> DirBytes(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    out[entry.path().filename().string()] = os.str();
  }
  return out;
}

// Byte-level checkpoint comparison with readable failures (never dumps
// the binary blobs themselves).
void ExpectSameCheckpointBytes(const std::string& expect_dir,
                               const std::string& actual_dir,
                               const std::string& label) {
  const auto expect = DirBytes(expect_dir);
  const auto actual = DirBytes(actual_dir);
  ASSERT_EQ(expect.size(), actual.size()) << label;
  for (const auto& [file, bytes] : expect) {
    const auto it = actual.find(file);
    ASSERT_NE(it, actual.end()) << label << ": missing " << file;
    EXPECT_TRUE(it->second == bytes)
        << label << ": " << file << " differs (" << it->second.size()
        << " vs " << bytes.size() << " bytes)";
  }
}

void ExpectSameSnapshot(const ClusteringSnapshot& expect,
                        const ClusteringSnapshot& actual,
                        const std::string& label) {
  EXPECT_EQ(expect.ids, actual.ids) << label;
  EXPECT_TRUE(expect.categories == actual.categories) << label;
  EXPECT_EQ(expect.cids, actual.cids) << label;
}

// Raw loopback socket for the malformed-frame matrix (the client class
// refuses to send garbage, so the tests go under it).
int ConnectTcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  SetIoTimeouts(fd, 5);
  return fd;
}

// Reads one response frame off a raw fd. Returns false on disconnect.
bool ReadFrame(int fd, MessageType* type, std::string* payload) {
  char header_buf[kFrameHeaderBytes];
  if (RecvFully(fd, header_buf, kFrameHeaderBytes) < kFrameHeaderBytes) {
    return false;
  }
  FrameHeader header;
  if (!ParseFrameHeader(header_buf, kDefaultMaxFrameBytes, &header).ok()) {
    return false;
  }
  payload->assign(header.payload_size, '\0');
  if (header.payload_size > 0 &&
      RecvFully(fd, payload->data(), payload->size()) < payload->size()) {
    return false;
  }
  *type = header.type;
  return true;
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(WireTest, FrameRoundTrips) {
  const std::string payload = "hello frame";
  const std::string frame = EncodeFrame(MessageType::kPing, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  FrameHeader header;
  ASSERT_TRUE(
      ParseFrameHeader(frame.data(), kDefaultMaxFrameBytes, &header).ok());
  EXPECT_EQ(header.type, MessageType::kPing);
  EXPECT_EQ(header.payload_size, payload.size());
  EXPECT_TRUE(
      VerifyPayloadCrc(header, frame.substr(kFrameHeaderBytes)).ok());
}

TEST(WireTest, FrameHeaderRejections) {
  FrameHeader header;
  std::string frame = EncodeFrame(MessageType::kPing, "x");

  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  Status s = ParseFrameHeader(bad_magic.data(), kDefaultMaxFrameBytes,
                              &header);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("magic"), std::string::npos);

  std::string bad_type = frame;
  bad_type[4] = static_cast<char>(200);
  s = ParseFrameHeader(bad_type.data(), kDefaultMaxFrameBytes, &header);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("type"), std::string::npos);

  std::string bad_flags = frame;
  bad_flags[5] = 1;
  EXPECT_FALSE(
      ParseFrameHeader(bad_flags.data(), kDefaultMaxFrameBytes, &header)
          .ok());

  // Length prefix above the cap is rejected from the header alone.
  s = ParseFrameHeader(frame.data(), /*max_frame_bytes=*/0, &header);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("frame cap"), std::string::npos);
}

TEST(WireTest, PayloadCrcCatchesEveryBitFlipPosition) {
  const std::string payload = "crc-guarded-payload";
  const std::string frame = EncodeFrame(MessageType::kPing, payload);
  FrameHeader header;
  ASSERT_TRUE(
      ParseFrameHeader(frame.data(), kDefaultMaxFrameBytes, &header).ok());
  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = payload;
      mutated[byte] = static_cast<char>(
          static_cast<unsigned char>(mutated[byte]) ^ (1u << bit));
      const Status s = VerifyPayloadCrc(header, mutated);
      ASSERT_FALSE(s.ok()) << "byte " << byte << " bit " << bit;
      EXPECT_NE(s.message().find("CRC mismatch"), std::string::npos);
    }
  }
}

TEST(WireTest, CreateSessionRoundTrips) {
  CreateSessionRequest request = TestSessionRequest("round_trip");
  request.method = "DBSTREAM";
  CreateSessionRequest decoded;
  ASSERT_TRUE(
      DecodeCreateSession(EncodeCreateSession(request), &decoded).ok());
  EXPECT_EQ(decoded.name, request.name);
  EXPECT_EQ(decoded.method, request.method);
  EXPECT_EQ(decoded.dims, request.dims);
  EXPECT_EQ(decoded.window_size, request.window_size);
  EXPECT_EQ(decoded.stride, request.stride);
  EXPECT_EQ(decoded.eps, request.eps);
  EXPECT_EQ(decoded.tau, request.tau);
}

TEST(WireTest, FeedSlideRoundTrips) {
  FeedSlideRequest request;
  request.name = "slide_session";
  const auto slides = MakeSlides(42, 1);
  request.points = slides[0];
  FeedSlideRequest decoded;
  ASSERT_TRUE(DecodeFeedSlide(EncodeFeedSlide(request), &decoded).ok());
  ASSERT_EQ(decoded.points.size(), request.points.size());
  for (std::size_t i = 0; i < decoded.points.size(); ++i) {
    EXPECT_EQ(decoded.points[i].id, request.points[i].id);
    ASSERT_EQ(decoded.points[i].dims, request.points[i].dims);
    for (std::uint32_t d = 0; d < decoded.points[i].dims; ++d) {
      EXPECT_EQ(decoded.points[i].x[d], request.points[i].x[d]);
    }
  }
}

TEST(WireTest, FeedSlideDecodeRejectsBadGeometry) {
  FeedSlideRequest request;
  request.name = "geom";
  request.points = MakeSlides(7, 1)[0];
  const std::string good = EncodeFeedSlide(request);
  FeedSlideRequest decoded;

  // dims byte tampered to 0 and to kMaxDims+1: both named in the error.
  const std::size_t dims_offset = 4 + request.name.size();
  std::string zero_dims = good;
  zero_dims[dims_offset] = 0;
  Status s = DecodeFeedSlide(zero_dims, &decoded);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("dims"), std::string::npos);

  std::string big_dims = good;
  big_dims[dims_offset] = static_cast<char>(kMaxDims + 1);
  EXPECT_FALSE(DecodeFeedSlide(big_dims, &decoded).ok());

  // Trailing garbage and truncation are byte-count mismatches.
  EXPECT_FALSE(DecodeFeedSlide(good + "x", &decoded).ok());
  s = DecodeFeedSlide(std::string_view(good).substr(0, good.size() - 3),
                      &decoded);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("size mismatch"), std::string::npos);
}

TEST(WireTest, SnapshotRoundTripsAndRejectsBadCategory) {
  ClusteringSnapshot snapshot;
  snapshot.ids = {1, 5, 9};
  snapshot.categories = {Category::kCore, Category::kBorder,
                         Category::kNoise};
  snapshot.cids = {0, 0, -1};
  const std::string payload = EncodeSnapshot(snapshot);
  ClusteringSnapshot decoded;
  ASSERT_TRUE(DecodeSnapshot(payload, &decoded).ok());
  ExpectSameSnapshot(snapshot, decoded, "snapshot round trip");

  std::string bad = payload;
  bad[8 + 8] = 9;  // First row's category byte: no such Category.
  const Status s = DecodeSnapshot(bad, &decoded);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("category"), std::string::npos);
  EXPECT_FALSE(DecodeSnapshot(payload + "x", &decoded).ok());
}

TEST(WireTest, ReaderFailuresAreSticky) {
  WireWriter w;
  w.U32(7);
  const std::string bytes = w.Take();
  WireReader r(bytes);
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.U64(), 0u);  // Past the end: fails...
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // ...and stays failed.
  EXPECT_FALSE(r.AtEnd());

  // A string whose length prefix exceeds the 1 MiB cap fails without
  // allocating.
  WireWriter huge;
  huge.U32(0x7FFFFFFFu);
  WireReader hr(huge.bytes());
  EXPECT_EQ(hr.Str(), "");
  EXPECT_FALSE(hr.ok());
}

// ---------------------------------------------------------------------------
// Server lifecycle
// ---------------------------------------------------------------------------

TEST(IngestServerTest, StartValidatesOptions) {
  IngestServerOptions no_engine;
  IngestServer server(no_engine);
  const Status s = server.Start();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("engine"), std::string::npos);
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);

  DiscEngine engine(EngineOptions{});
  IngestServerOptions unbounded;
  unbounded.engine = &engine;
  unbounded.max_pending_slides = 0;
  IngestServer bad_bound(unbounded);
  EXPECT_FALSE(bad_bound.Start().ok());
}

TEST(IngestServerTest, DoubleStartFailsAndStopIsIdempotent) {
  DiscEngine engine(EngineOptions{});
  IngestServerOptions options;
  options.engine = &engine;
  IngestServer server(options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  const Status again = server.Start();
  ASSERT_FALSE(again.ok());
  EXPECT_NE(again.message().find("already running"), std::string::npos);
  server.Stop();
  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end byte identity
// ---------------------------------------------------------------------------

// Two sessions fed over the socket must end byte-identical to the same
// run in-process — snapshots and checkpoint bytes — for every worker-lane
// count, because a connection's requests execute in order on one lane.
TEST(IngestEndToEndTest, SocketFedRunMatchesInProcessForEveryLaneCount) {
  const std::vector<std::string> names = {"sock_a", "sock_b"};
  constexpr std::size_t kSlideCount = 6;
  std::vector<std::vector<std::vector<Point>>> streams;
  for (std::size_t i = 0; i < names.size(); ++i) {
    streams.push_back(MakeSlides(4000 + i, kSlideCount));
  }

  // In-process reference, single lane.
  EngineOptions ref_options;
  ref_options.num_threads = 1;
  ref_options.spill_dir = SpillDir("ref");
  DiscEngine reference(ref_options);
  for (const std::string& name : names) {
    ASSERT_TRUE(
        reference
            .CreateSession(name, ToSessionOptions(TestSessionRequest(name)))
            .ok());
  }
  for (std::size_t k = 0; k < kSlideCount; ++k) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      ASSERT_TRUE(reference.FeedSlide(names[i], streams[i][k]).ok());
    }
    reference.Drain();
  }
  ASSERT_TRUE(reference.Checkpoint().ok());
  std::vector<ClusteringSnapshot> ref_snapshots(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    ASSERT_TRUE(reference.QuerySnapshot(names[i], &ref_snapshots[i]).ok());
  }

  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}}) {
    SCOPED_TRACE("lanes " + std::to_string(lanes));
    EngineOptions engine_options;
    engine_options.num_threads = static_cast<std::uint32_t>(lanes);
    engine_options.spill_dir = SpillDir("lanes_" + std::to_string(lanes));
    DiscEngine engine(engine_options);
    IngestServerOptions server_options;
    server_options.worker_threads = lanes;
    server_options.engine = &engine;
    IngestServer server(server_options);
    ASSERT_TRUE(server.Start().ok());

    IngestClientOptions client_options;
    client_options.port = server.port();
    IngestClient client(client_options);
    ASSERT_TRUE(client.Connect().ok());
    for (const std::string& name : names) {
      ASSERT_TRUE(client.CreateSession(TestSessionRequest(name)).ok());
    }
    for (std::size_t k = 0; k < kSlideCount; ++k) {
      for (std::size_t i = 0; i < names.size(); ++i) {
        ASSERT_TRUE(client.FeedSlide(names[i], streams[i][k]).ok());
      }
      std::uint64_t executed = 0;
      ASSERT_TRUE(client.Drain(&executed).ok());
      EXPECT_EQ(executed, names.size());
    }
    for (std::size_t i = 0; i < names.size(); ++i) {
      ClusteringSnapshot snapshot;
      ASSERT_TRUE(client.QuerySnapshot(names[i], &snapshot).ok());
      ExpectSameSnapshot(ref_snapshots[i], snapshot, names[i]);
    }
    client.Close();
    server.Stop();
    ASSERT_TRUE(engine.Checkpoint().ok());
    ExpectSameCheckpointBytes(ref_options.spill_dir,
                              engine_options.spill_dir,
                              "lanes " + std::to_string(lanes));
    std::filesystem::remove_all(engine_options.spill_dir);
  }
  std::filesystem::remove_all(ref_options.spill_dir);
}

// The same identity must hold across checkpoint → kill → Open → resume:
// half the stream over one server incarnation, recovery, the other half
// over a fresh incarnation.
TEST(IngestEndToEndTest, ResumedSocketRunMatchesUninterruptedInProcess) {
  const std::vector<std::string> names = {"res_a", "res_b"};
  constexpr std::size_t kSlideCount = 8;
  constexpr std::size_t kCut = 4;
  std::vector<std::vector<std::vector<Point>>> streams;
  for (std::size_t i = 0; i < names.size(); ++i) {
    streams.push_back(MakeSlides(6000 + i, kSlideCount));
  }

  // Uninterrupted in-process reference.
  EngineOptions ref_options;
  ref_options.num_threads = 1;
  ref_options.spill_dir = SpillDir("resume_ref");
  DiscEngine reference(ref_options);
  for (const std::string& name : names) {
    ASSERT_TRUE(
        reference
            .CreateSession(name, ToSessionOptions(TestSessionRequest(name)))
            .ok());
  }
  for (std::size_t k = 0; k < kSlideCount; ++k) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      ASSERT_TRUE(reference.FeedSlide(names[i], streams[i][k]).ok());
    }
    reference.Drain();
  }
  ASSERT_TRUE(reference.Checkpoint().ok());

  EngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.spill_dir = SpillDir("resume_sock");
  {
    DiscEngine engine(engine_options);
    IngestServerOptions server_options;
    server_options.worker_threads = 2;
    server_options.engine = &engine;
    IngestServer server(server_options);
    ASSERT_TRUE(server.Start().ok());
    IngestClientOptions client_options;
    client_options.port = server.port();
    IngestClient client(client_options);
    ASSERT_TRUE(client.Connect().ok());
    for (const std::string& name : names) {
      ASSERT_TRUE(client.CreateSession(TestSessionRequest(name)).ok());
    }
    for (std::size_t k = 0; k < kCut; ++k) {
      for (std::size_t i = 0; i < names.size(); ++i) {
        ASSERT_TRUE(client.FeedSlide(names[i], streams[i][k]).ok());
      }
      ASSERT_TRUE(client.Drain().ok());
    }
    client.Close();
    server.Stop();
    ASSERT_TRUE(engine.Checkpoint().ok());
    // Engine destroyed here: the kill.
  }
  Status open_error;
  std::unique_ptr<DiscEngine> recovered =
      DiscEngine::Open(engine_options, &open_error);
  ASSERT_NE(recovered, nullptr) << open_error.message();
  IngestServerOptions server_options;
  server_options.worker_threads = 4;  // Lane count may even change.
  server_options.engine = recovered.get();
  IngestServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  IngestClientOptions client_options;
  client_options.port = server.port();
  IngestClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  for (std::size_t k = kCut; k < kSlideCount; ++k) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      ASSERT_TRUE(client.FeedSlide(names[i], streams[i][k]).ok());
    }
    ASSERT_TRUE(client.Drain().ok());
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    ClusteringSnapshot expect;
    ASSERT_TRUE(reference.QuerySnapshot(names[i], &expect).ok());
    ClusteringSnapshot actual;
    ASSERT_TRUE(client.QuerySnapshot(names[i], &actual).ok());
    ExpectSameSnapshot(expect, actual, names[i]);
  }
  client.Close();
  server.Stop();
  ASSERT_TRUE(recovered->Checkpoint().ok());
  ExpectSameCheckpointBytes(ref_options.spill_dir, engine_options.spill_dir,
                            "resumed run");
  std::filesystem::remove_all(ref_options.spill_dir);
  std::filesystem::remove_all(engine_options.spill_dir);
}

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

TEST(IngestBackpressureTest, FullAdmissionQueueAnswersBusyAndNeverDrops) {
  obs::MetricsRegistry metrics;
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.metrics = &metrics;
  DiscEngine engine(engine_options);
  IngestServerOptions server_options;
  server_options.engine = &engine;
  server_options.metrics = &metrics;
  server_options.max_pending_slides = 2;
  IngestServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  IngestClientOptions client_options;
  client_options.port = server.port();
  IngestClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.CreateSession(TestSessionRequest("pressured")).ok());

  const auto slides = MakeSlides(99, 3);
  bool busy = false;
  ASSERT_TRUE(client.FeedSlide("pressured", slides[0], &busy).ok());
  ASSERT_TRUE(client.FeedSlide("pressured", slides[1], &busy).ok());
  EXPECT_FALSE(busy);

  // Third slide: the bound is 2, so this is an explicit BUSY — counted,
  // descriptive, nothing admitted.
  const Status rejected = client.FeedSlide("pressured", slides[2], &busy);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(busy);
  EXPECT_NE(rejected.message().find("admission queue full"),
            std::string::npos);
  EXPECT_EQ(metrics.counter("net_busy_rejections_total").value(), 1u);
  EXPECT_EQ(engine.PendingSlides("pressured"), 2u);

  // The producer's contract: drain, then the same slide is admitted.
  std::uint64_t executed = 0;
  ASSERT_TRUE(client.Drain(&executed).ok());
  EXPECT_EQ(executed, 2u);
  busy = false;
  ASSERT_TRUE(client.FeedSlide("pressured", slides[2], &busy).ok());
  EXPECT_FALSE(busy);
  ASSERT_TRUE(client.Drain().ok());
  EXPECT_EQ(engine.SlidesRun("pressured"), 3u);  // Nothing lost.
  client.Close();
  server.Stop();
}

TEST(IngestBackpressureTest, RequestErrorsAreDescriptive) {
  DiscEngine engine(EngineOptions{});
  IngestServerOptions server_options;
  server_options.engine = &engine;
  IngestServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  IngestClientOptions client_options;
  client_options.port = server.port();
  IngestClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());

  // Unknown session, duplicate session, wrong point count: each surfaces
  // the engine's message through the kError payload, connection intact.
  const auto slides = MakeSlides(1, 1);
  Status s = client.FeedSlide("nobody", slides[0]);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("nobody"), std::string::npos);

  ASSERT_TRUE(client.CreateSession(TestSessionRequest("dup")).ok());
  s = client.CreateSession(TestSessionRequest("dup"));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("dup"), std::string::npos);

  std::vector<Point> short_slide(slides[0].begin(), slides[0].begin() + 5);
  s = client.FeedSlide("dup", short_slide);
  ASSERT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty());
  EXPECT_EQ(engine.PendingSlides("dup"), 0u);  // Nothing partially admitted.

  ClusteringSnapshot unused;
  s = client.QuerySnapshot("nobody", &unused);
  EXPECT_FALSE(s.ok());

  EXPECT_TRUE(client.Ping().ok());  // Connection survived every rejection.
  client.Close();
  server.Stop();
}

// ---------------------------------------------------------------------------
// Malformed-frame matrix
// ---------------------------------------------------------------------------

class FrameMatrixTest : public testing::Test {
 protected:
  void SetUp() override {
    engine_options_.num_threads = 1;
    engine_options_.metrics = &metrics_;
    engine_ = std::make_unique<DiscEngine>(engine_options_);
    server_options_.engine = engine_.get();
    server_options_.metrics = &metrics_;
    server_ = std::make_unique<IngestServer>(server_options_);
    ASSERT_TRUE(server_->Start().ok());
  }

  // The liveness probe every case ends with: a fresh client must get a
  // clean Pong, proving the garbage cost at most its own connection. The
  // probe can race the backlog of just-closed garbage connections and be
  // load-shed (a correct kBusy), so it retries briefly.
  void ExpectServerAlive() {
    IngestClientOptions options;
    options.port = server_->port();
    IngestClient client(options);
    for (int attempt = 0; attempt < 50; ++attempt) {
      if (client.Connect().ok() && client.Ping().ok()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "server never answered a clean Pong";
  }

  obs::MetricsRegistry metrics_;
  EngineOptions engine_options_;
  IngestServerOptions server_options_;
  std::unique_ptr<DiscEngine> engine_;
  std::unique_ptr<IngestServer> server_;
};

TEST_F(FrameMatrixTest, TruncationAtEveryHeaderBoundary) {
  const std::string frame = EncodeFrame(MessageType::kPing, "torn");
  for (std::size_t cut = 0; cut < kFrameHeaderBytes; ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    const int fd = ConnectTcp(server_->port());
    ASSERT_GE(fd, 0);
    if (cut > 0) {
      ASSERT_TRUE(SendAllBytes(fd, frame.data(), cut));
    }
    ::close(fd);  // Mid-header hangup: the server owes nothing but survival.
  }
  ExpectServerAlive();
}

TEST_F(FrameMatrixTest, TruncatedPayloadGetsDescriptiveErrorFrame) {
  const std::string frame = EncodeFrame(MessageType::kPing, "half-a-payload");
  const int fd = ConnectTcp(server_->port());
  ASSERT_GE(fd, 0);
  // Full header plus half the payload, then a half-close so the server's
  // read sees EOF while the answer can still come back.
  ASSERT_TRUE(SendAllBytes(fd, frame.data(), kFrameHeaderBytes + 7));
  ::shutdown(fd, SHUT_WR);
  MessageType type = MessageType::kOk;
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd, &type, &payload));
  EXPECT_EQ(type, MessageType::kError);
  EXPECT_NE(payload.find("torn frame"), std::string::npos);
  ::close(fd);
  ExpectServerAlive();
  EXPECT_GE(metrics_.counter("net_frames_bad_total").value(), 1u);
}

TEST_F(FrameMatrixTest, CrcBitFlipsAnswerErrorNeverAdmit) {
  // A real FeedSlide frame with one payload bit flipped: the CRC check
  // must reject it before the engine sees any point — corruption can
  // never partially admit a slide.
  IngestClientOptions client_options;
  client_options.port = server_->port();
  IngestClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.CreateSession(TestSessionRequest("crc_victim")).ok());
  FeedSlideRequest request;
  request.name = "crc_victim";
  request.points = MakeSlides(5, 1)[0];
  const std::string frame =
      EncodeFrame(MessageType::kFeedSlide, EncodeFeedSlide(request));

  for (const std::size_t flip_at :
       {kFrameHeaderBytes, frame.size() / 2, frame.size() - 1}) {
    SCOPED_TRACE("flip at byte " + std::to_string(flip_at));
    std::string corrupt = frame;
    corrupt[flip_at] = static_cast<char>(
        static_cast<unsigned char>(corrupt[flip_at]) ^ 0x08);
    const int fd = ConnectTcp(server_->port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(SendAllBytes(fd, corrupt.data(), corrupt.size()));
    MessageType type = MessageType::kOk;
    std::string payload;
    ASSERT_TRUE(ReadFrame(fd, &type, &payload));
    EXPECT_EQ(type, MessageType::kError);
    EXPECT_NE(payload.find("CRC mismatch"), std::string::npos);
    ::close(fd);
  }
  EXPECT_EQ(engine_->PendingSlides("crc_victim"), 0u);  // Nothing admitted.
  ExpectServerAlive();
}

TEST_F(FrameMatrixTest, OversizedLengthPrefixRejectedBeforePayload) {
  // Hand-built header whose length prefix claims ~4 GiB. The server must
  // answer from the header alone — reading (or allocating) that payload
  // would be the vulnerability.
  std::string header = EncodeFrame(MessageType::kPing, "");
  header[8] = static_cast<char>(0xFF);
  header[9] = static_cast<char>(0xFF);
  header[10] = static_cast<char>(0xFF);
  header[11] = static_cast<char>(0xFF);
  const int fd = ConnectTcp(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAllBytes(fd, header.data(), header.size()));
  MessageType type = MessageType::kOk;
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd, &type, &payload));
  EXPECT_EQ(type, MessageType::kError);
  EXPECT_NE(payload.find("frame cap"), std::string::npos);
  ::close(fd);
  ExpectServerAlive();
}

TEST_F(FrameMatrixTest, ResponseTypeAsRequestRejected) {
  const std::string frame = EncodeFrame(MessageType::kOk, "");
  const int fd = ConnectTcp(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAllBytes(fd, frame.data(), frame.size()));
  MessageType type = MessageType::kOk;
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd, &type, &payload));
  EXPECT_EQ(type, MessageType::kError);
  EXPECT_NE(payload.find("request"), std::string::npos);
  ::close(fd);
  ExpectServerAlive();
}

TEST_F(FrameMatrixTest, ByteTrickledFrameStillAnswered) {
  // Slow-loris a valid Ping one byte at a time: the frame loop
  // accumulates across reads, so it must still answer Pong.
  const std::string frame = EncodeFrame(MessageType::kPing, "drip");
  const int fd = ConnectTcp(server_->port());
  ASSERT_GE(fd, 0);
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
  for (const char c : frame) {
    ASSERT_TRUE(SendAllBytes(fd, &c, 1));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  MessageType type = MessageType::kOk;
  std::string payload;
  ASSERT_TRUE(ReadFrame(fd, &type, &payload));
  EXPECT_EQ(type, MessageType::kPong);
  EXPECT_EQ(payload, "drip");
  ::close(fd);
  ExpectServerAlive();
}

TEST(IngestTimeoutTest, StalledMidFramePeerIsDisconnected) {
  // A peer that sends half a header and then stalls must be cut loose by
  // the I/O timeout — it can hold a worker lane for io_timeout_s, never
  // forever.
  DiscEngine engine(EngineOptions{});
  IngestServerOptions server_options;
  server_options.engine = &engine;
  server_options.io_timeout_s = 1;
  IngestServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  const int fd = ConnectTcp(server.port());
  ASSERT_GE(fd, 0);
  const std::string frame = EncodeFrame(MessageType::kPing, "stall");
  ASSERT_TRUE(SendAllBytes(fd, frame.data(), 6));  // ...then silence.
  char buf[16];
  const std::size_t got = RecvFully(fd, buf, sizeof(buf));
  EXPECT_EQ(got, 0u);  // Clean disconnect, no bytes.
  ::close(fd);
  IngestClientOptions client_options;
  client_options.port = server.port();
  IngestClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
}

TEST(IngestOverloadTest, QueueOverflowAnswersBusyFrame) {
  obs::MetricsRegistry metrics;
  DiscEngine engine(EngineOptions{});
  IngestServerOptions server_options;
  server_options.engine = &engine;
  server_options.metrics = &metrics;
  server_options.worker_threads = 1;
  server_options.max_queued_connections = 1;
  server_options.io_timeout_s = 2;
  IngestServer server(server_options);
  ASSERT_TRUE(server.Start().ok());

  // Wedge the single lane with a half-sent frame, fill the one queue
  // slot, then overflow: the third connection must get an immediate kBusy
  // from the accept thread — shed load is explicit, never a silent close.
  const int wedge = ConnectTcp(server.port());
  ASSERT_GE(wedge, 0);
  const std::string frame = EncodeFrame(MessageType::kPing, "wedge");
  ASSERT_TRUE(SendAllBytes(wedge, frame.data(), 4));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int queued = ConnectTcp(server.port());
  ASSERT_GE(queued, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const int shed = ConnectTcp(server.port());
  ASSERT_GE(shed, 0);
  MessageType type = MessageType::kOk;
  std::string payload;
  ASSERT_TRUE(ReadFrame(shed, &type, &payload));
  EXPECT_EQ(type, MessageType::kBusy);
  EXPECT_NE(payload.find("overloaded"), std::string::npos);
  EXPECT_GE(metrics.counter("net_busy_rejections_total").value(), 1u);
  ::close(shed);
  ::close(queued);
  ::close(wedge);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Telemetry integration
// ---------------------------------------------------------------------------

TEST(IngestTelemetryTest, HealthzCoversTheIngestListener) {
  obs::MetricsRegistry metrics;
  bool ingest_up = true;
  obs::HttpServerOptions options;
  options.metrics = &metrics;
  options.ingest_ready = [&ingest_up]() { return ingest_up; };
  obs::HttpServer server(options);

  obs::HttpResponse ok = server.Handle("/healthz");
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("\"ingest\":\"ok\""), std::string::npos);

  ingest_up = false;  // The ingest plane died: readiness must flip.
  obs::HttpResponse down = server.Handle("/healthz");
  EXPECT_EQ(down.status, 503);
  EXPECT_NE(down.body.find("\"ingest\":\"not_listening\""),
            std::string::npos);
  EXPECT_NE(down.body.find("\"ready\":false"), std::string::npos);

  // Without the probe the component reports unbound and does not gate.
  obs::HttpServerOptions unbound;
  unbound.metrics = &metrics;
  obs::HttpServer plain(unbound);
  obs::HttpResponse response = plain.Handle("/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"ingest\":\"unbound\""), std::string::npos);
}

TEST(IngestTelemetryTest, NetCountersTrackTraffic) {
  obs::MetricsRegistry metrics;
  DiscEngine engine(EngineOptions{});
  IngestServerOptions server_options;
  server_options.engine = &engine;
  server_options.metrics = &metrics;
  IngestServer server(server_options);
  ASSERT_TRUE(server.Start().ok());
  IngestClientOptions client_options;
  client_options.port = server.port();
  IngestClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.Ping().ok());
  client.Close();
  server.Stop();  // Quiesce before reading.

  EXPECT_EQ(metrics.counter("net_connections_total").value(), 1u);
  EXPECT_EQ(metrics.counter("net_frames_total").value(), 2u);
  EXPECT_EQ(metrics.counter("net_frames_bad_total").value(), 0u);
  EXPECT_GT(metrics.counter("net_bytes_rx_total").value(), 0u);
  EXPECT_GT(metrics.counter("net_bytes_tx_total").value(), 0u);
  EXPECT_EQ(metrics.gauge("net_connections_open").value(), 0.0);
}

}  // namespace
}  // namespace net
}  // namespace disc
