// Correctness tests for the baseline clusterers: IncDBSCAN and EXTRA-N must
// match fresh DBSCAN exactly after every slide; the approximate methods must
// behave sanely (high ARI on well-separated data, labels for every point).

#include <memory>
#include <vector>

#include "baselines/dbscan.h"
#include "baselines/dbstream.h"
#include "baselines/edmstream.h"
#include "baselines/extra_n.h"
#include "baselines/inc_dbscan.h"
#include "baselines/rho_dbscan.h"
#include "eval/ari.h"
#include "eval/equivalence.h"
#include "eval/partition.h"
#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

std::unique_ptr<BlobsGenerator> MakeBlobs(double drift, std::uint64_t seed) {
  BlobsGenerator::Options o;
  o.dims = 2;
  o.num_blobs = 5;
  o.extent = 10.0;
  o.stddev = 0.3;
  o.noise_fraction = 0.12;
  o.drift = drift;
  o.seed = seed;
  return std::make_unique<BlobsGenerator>(o);
}

void ExpectExactMethod(StreamClusterer* method, double eps, std::uint32_t tau,
                       std::size_t window_size, std::size_t stride,
                       double drift, int slides) {
  auto source = MakeBlobs(drift, 7);
  CountBasedWindow window(window_size, stride);
  for (int s = 0; s < slides; ++s) {
    WindowDelta delta = window.Advance(source->NextPoints(stride));
    method->Update(delta.incoming, delta.outgoing);
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const DbscanResult truth = RunDbscan(contents, eps, tau);
    const EquivalenceResult eq =
        CheckSameClustering(method->Snapshot(), truth.snapshot, contents, eps);
    ASSERT_TRUE(eq.ok) << method->name() << " slide " << s << ": " << eq.error;
  }
}

TEST(IncDbscanTest, MatchesDbscanOnStaticBlobs) {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  IncDbscan inc(2, config);
  ExpectExactMethod(&inc, config.eps, config.tau, 500, 50, 0.0, 10);
}

TEST(IncDbscanTest, MatchesDbscanOnDriftingBlobs) {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  IncDbscan inc(2, config);
  ExpectExactMethod(&inc, config.eps, config.tau, 500, 100, 0.06, 10);
}

TEST(IncDbscanTest, MatchesDbscanWithoutOptimizations) {
  DiscConfig config;
  config.eps = 0.35;
  config.tau = 5;
  config.use_msbfs = false;
  config.use_epoch_probing = false;
  IncDbscan inc(2, config);
  ExpectExactMethod(&inc, config.eps, config.tau, 400, 80, 0.05, 8);
}

TEST(IncDbscanTest, FullTurnoverStride) {
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 4;
  IncDbscan inc(2, config);
  ExpectExactMethod(&inc, config.eps, config.tau, 300, 300, 0.02, 6);
}

TEST(ExtraNTest, MatchesDbscanOnStaticBlobs) {
  ExtraN extra(2, 0.4, 5, 500, 50);
  ExpectExactMethod(&extra, 0.4, 5, 500, 50, 0.0, 12);
}

TEST(ExtraNTest, MatchesDbscanOnDriftingBlobs) {
  ExtraN extra(2, 0.4, 4, 480, 120);
  ExpectExactMethod(&extra, 0.4, 4, 480, 120, 0.05, 10);
}

TEST(ExtraNTest, MemoryGrowsWithViewCount) {
  // Same data, smaller stride => more predicted views => more memory.
  auto run = [](std::size_t stride) {
    ExtraN extra(2, 0.4, 5, 480, stride);
    auto source = MakeBlobs(0.0, 11);
    CountBasedWindow window(480, stride);
    for (int s = 0; s < static_cast<int>(480 / stride) + 2; ++s) {
      WindowDelta d = window.Advance(source->NextPoints(stride));
      extra.Update(d.incoming, d.outgoing);
    }
    return extra.ApproxMemoryBytes();
  };
  EXPECT_GT(run(20), run(240));
}

TEST(RhoDbscanTest, HighAccuracyMatchesDbscanOnSeparatedBlobs) {
  RhoDbscan::Options o;
  o.eps = 0.4;
  o.tau = 5;
  o.rho = 0.001;
  RhoDbscan rho(2, o);
  auto source = MakeBlobs(0.0, 13);
  CountBasedWindow window(500, 100);
  for (int s = 0; s < 8; ++s) {
    WindowDelta d = window.Advance(source->NextPoints(100));
    rho.Update(d.incoming, d.outgoing);
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const DbscanResult truth = RunDbscan(contents, o.eps, o.tau);
    std::vector<PointId> ids;
    for (const Point& p : contents) ids.push_back(p.id);
    const double ari = AdjustedRandIndex(LabelsFor(rho.Snapshot(), ids),
                                         LabelsFor(truth.snapshot, ids));
    // Approximate method: near-exact on well-separated blobs.
    EXPECT_GT(ari, 0.97) << "slide " << s;
  }
}

TEST(RhoDbscanTest, LabelsEveryWindowPoint) {
  RhoDbscan::Options o;
  o.eps = 0.5;
  o.tau = 4;
  o.rho = 0.1;
  RhoDbscan rho(2, o);
  auto source = MakeBlobs(0.05, 17);
  CountBasedWindow window(300, 60);
  for (int s = 0; s < 6; ++s) {
    WindowDelta d = window.Advance(source->NextPoints(60));
    rho.Update(d.incoming, d.outgoing);
  }
  EXPECT_EQ(rho.Snapshot().size(), 300u);
}

TEST(DbStreamTest, HighAriOnSeparatedBlobs) {
  DbStream::Options o;
  o.radius = 0.35;
  o.decay_lambda = 1e-3;
  o.alpha = 0.2;
  DbStream dbs(2, o);
  auto source = MakeBlobs(0.0, 19);
  CountBasedWindow window(600, 120);
  double last_ari = 0.0;
  for (int s = 0; s < 8; ++s) {
    WindowDelta d = window.Advance(source->NextPoints(120));
    dbs.Update(d.incoming, d.outgoing);
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const DbscanResult truth = RunDbscan(contents, 0.4, 5);
    std::vector<PointId> ids;
    for (const Point& p : contents) ids.push_back(p.id);
    last_ari = AdjustedRandIndex(LabelsFor(dbs.Snapshot(), ids),
                                 LabelsFor(truth.snapshot, ids));
  }
  EXPECT_GT(last_ari, 0.6);
  EXPECT_GT(dbs.num_micro_clusters(), 4u);
}

TEST(EdmStreamTest, HighAriOnSeparatedBlobs) {
  EdmStream::Options o;
  o.radius = 0.3;
  o.decay_lambda = 1e-3;
  o.delta_threshold = 0.9;
  o.rho_min = 1.5;
  EdmStream edm(2, o);
  auto source = MakeBlobs(0.0, 23);
  CountBasedWindow window(600, 120);
  double last_ari = 0.0;
  for (int s = 0; s < 8; ++s) {
    WindowDelta d = window.Advance(source->NextPoints(120));
    edm.Update(d.incoming, d.outgoing);
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const DbscanResult truth = RunDbscan(contents, 0.4, 5);
    std::vector<PointId> ids;
    for (const Point& p : contents) ids.push_back(p.id);
    last_ari = AdjustedRandIndex(LabelsFor(edm.Snapshot(), ids),
                                 LabelsFor(truth.snapshot, ids));
  }
  EXPECT_GT(last_ari, 0.6);
}

TEST(DbscanClustererTest, WindowedRunsMatchStaticRuns) {
  DbscanClusterer dbscan(2, 0.4, 5);
  auto source = MakeBlobs(0.04, 29);
  CountBasedWindow window(400, 100);
  for (int s = 0; s < 6; ++s) {
    WindowDelta d = window.Advance(source->NextPoints(100));
    dbscan.Update(d.incoming, d.outgoing);
    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    const DbscanResult truth = RunDbscan(contents, 0.4, 5);
    const EquivalenceResult eq = CheckSameClustering(
        dbscan.Snapshot(), truth.snapshot, contents, 0.4);
    ASSERT_TRUE(eq.ok) << eq.error;
  }
}

}  // namespace
}  // namespace disc
