#include <unordered_set>

#include "gtest/gtest.h"
#include "stream/blobs_generator.h"
#include "stream/covid_generator.h"
#include "stream/csv.h"
#include "stream/dtg_generator.h"
#include "stream/geolife_generator.h"
#include "stream/iris_generator.h"
#include "stream/maze_generator.h"
#include "stream/sliding_window.h"
#include "stream/stream_source.h"

namespace disc {
namespace {

TEST(CountBasedWindowTest, FillsBeforeEvicting) {
  CountBasedWindow window(10, 5);
  UniformGenerator gen(2, 0.0, 1.0);
  WindowDelta d1 = window.Advance(gen.NextPoints(5));
  EXPECT_EQ(d1.incoming.size(), 5u);
  EXPECT_TRUE(d1.outgoing.empty());
  EXPECT_FALSE(window.full());
  WindowDelta d2 = window.Advance(gen.NextPoints(5));
  EXPECT_TRUE(d2.outgoing.empty());
  EXPECT_TRUE(window.full());
  WindowDelta d3 = window.Advance(gen.NextPoints(5));
  EXPECT_EQ(d3.outgoing.size(), 5u);
  EXPECT_EQ(window.contents().size(), 10u);
  // FIFO: the evicted points are the oldest ones.
  EXPECT_EQ(d3.outgoing[0].id, d1.incoming[0].id);
}

TEST(CountBasedWindowTest, StrideEqualsWindowReplacesEverything) {
  CountBasedWindow window(6, 6);
  UniformGenerator gen(2, 0.0, 1.0);
  window.Advance(gen.NextPoints(6));
  WindowDelta d = window.Advance(gen.NextPoints(6));
  EXPECT_EQ(d.incoming.size(), 6u);
  EXPECT_EQ(d.outgoing.size(), 6u);
  std::unordered_set<PointId> in_ids, out_ids;
  for (const Point& p : d.incoming) in_ids.insert(p.id);
  for (const Point& p : d.outgoing) out_ids.insert(p.id);
  for (PointId id : out_ids) EXPECT_EQ(in_ids.count(id), 0u);
}

TEST(TimeBasedWindowTest, EvictsByTimestamp) {
  TimeBasedWindow window(/*window_span=*/10.0, /*stride_span=*/5.0);
  UniformGenerator gen(2, 0.0, 1.0);
  std::vector<TimeBasedWindow::TimedPoint> batch1;
  for (double t : {1.0, 2.0, 4.5}) {
    batch1.push_back({gen.Next().point, t});
  }
  WindowDelta d1 = window.Advance(batch1);
  EXPECT_EQ(d1.incoming.size(), 3u);
  EXPECT_TRUE(d1.outgoing.empty());

  std::vector<TimeBasedWindow::TimedPoint> batch2;
  for (double t : {6.0, 9.9}) {
    batch2.push_back({gen.Next().point, t});
  }
  WindowDelta d2 = window.Advance(batch2);
  EXPECT_TRUE(d2.outgoing.empty());  // Window now (0, 10].

  WindowDelta d3 = window.Advance({});  // Window now (5, 15].
  EXPECT_EQ(d3.outgoing.size(), 3u);   // Timestamps 1, 2, 4.5 expire.
  EXPECT_EQ(window.contents().size(), 2u);
}

TEST(StreamSourceTest, IdsAreSequentialAndUnique) {
  MazeGenerator::Options o;
  o.num_seeds = 4;
  MazeGenerator gen(o);
  std::vector<LabeledPoint> batch = gen.NextBatch(100);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].point.id, i);
  }
}

TEST(GeneratorTest, AllGeneratorsProduceValidPointsWithDeclaredDims) {
  MazeGenerator maze{MazeGenerator::Options{}};
  DtgGenerator dtg{DtgGenerator::Options{}};
  GeolifeGenerator geolife{GeolifeGenerator::Options{}};
  CovidGenerator covid{CovidGenerator::Options{}};
  IrisGenerator iris{IrisGenerator::Options{}};
  BlobsGenerator blobs{BlobsGenerator::Options{}};
  struct Case {
    StreamSource* source;
    std::uint32_t dims;
  } cases[] = {{&maze, 2},  {&dtg, 2},  {&geolife, 3},
               {&covid, 2}, {&iris, 4}, {&blobs, 2}};
  for (auto& c : cases) {
    for (int i = 0; i < 500; ++i) {
      const LabeledPoint lp = c.source->Next();
      ASSERT_TRUE(IsValidPoint(lp.point));
      ASSERT_EQ(lp.point.dims, c.dims);
    }
  }
}

TEST(GeneratorTest, DeterministicForEqualSeeds) {
  MazeGenerator::Options o;
  o.seed = 123;
  MazeGenerator a(o), b(o);
  for (int i = 0; i < 200; ++i) {
    const LabeledPoint pa = a.Next();
    const LabeledPoint pb = b.Next();
    EXPECT_EQ(pa.point.id, pb.point.id);
    EXPECT_DOUBLE_EQ(pa.point.x[0], pb.point.x[0]);
    EXPECT_DOUBLE_EQ(pa.point.x[1], pb.point.x[1]);
    EXPECT_EQ(pa.true_label, pb.true_label);
  }
}

TEST(GeneratorTest, MazeTrajectoriesStayInsideDomainAndAreLocal) {
  MazeGenerator::Options o;
  o.num_seeds = 3;
  o.extent = 20.0;
  o.step = 0.1;
  o.jitter = 0.01;
  o.points_per_step = 2;
  MazeGenerator gen(o);
  std::array<Point, 3> last{};
  std::array<bool, 3> seen{};
  for (int i = 0; i < 3000; ++i) {
    const LabeledPoint lp = gen.Next();
    ASSERT_GE(lp.true_label, 0);
    ASSERT_LT(lp.true_label, 3);
    EXPECT_GE(lp.point.x[0], -0.2);
    EXPECT_LE(lp.point.x[0], 20.2);
    const auto s = static_cast<std::size_t>(lp.true_label);
    if (seen[s]) {
      // Consecutive emissions of one walker are close (trajectory locality).
      EXPECT_LT(SquaredDistance(lp.point, last[s]), 1.0);
    }
    last[s] = lp.point;
    seen[s] = true;
  }
}

TEST(GeneratorTest, DtgPointsLieOnRoadNetwork) {
  DtgGenerator::Options o;
  o.lane_stddev = 0.001;
  DtgGenerator gen(o);
  int on_grid = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const Point p = gen.Next().point;
    // At least one coordinate should be near a road line (multiple of
    // road_spacing).
    auto near_road = [&](double v) {
      const double frac = std::abs(v - std::round(v / o.road_spacing) *
                                           o.road_spacing);
      return frac < 0.05;
    };
    if (near_road(p.x[0]) || near_road(p.x[1])) ++on_grid;
  }
  EXPECT_GT(on_grid, n * 95 / 100);
}

TEST(GeneratorTest, CovidNoiseFractionRoughlyRespected) {
  CovidGenerator::Options o;
  o.noise_fraction = 0.3;
  CovidGenerator gen(o);
  int noise = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (gen.Next().true_label < 0) ++noise;
  }
  EXPECT_NEAR(static_cast<double>(noise) / n, 0.3, 0.05);
}

TEST(CsvTest, RoundTripsPointsAndLabels) {
  std::vector<Point> pts;
  std::vector<ClusterId> cids;
  Rng rng(6);
  for (PointId id = 0; id < 25; ++id) {
    Point p;
    p.id = id;
    p.dims = 3;
    for (int d = 0; d < 3; ++d) p.x[d] = rng.Uniform(-2.0, 2.0);
    pts.push_back(p);
    cids.push_back(id % 4 == 0 ? kNoiseCluster : static_cast<ClusterId>(id % 3));
  }
  const std::string path = ::testing::TempDir() + "/csv_roundtrip.csv";
  ASSERT_TRUE(WriteLabeledCsv(path, pts, cids));
  std::vector<Point> read_pts;
  std::vector<ClusterId> read_cids;
  ASSERT_TRUE(ReadPointsCsv(path, &read_pts, &read_cids));
  ASSERT_EQ(read_pts.size(), pts.size());
  ASSERT_EQ(read_cids, cids);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(read_pts[i].id, pts[i].id);
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(read_pts[i].x[d], pts[i].x[d], 1e-9);
    }
  }
}

}  // namespace
}  // namespace disc
