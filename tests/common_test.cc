#include <cmath>
#include <type_traits>
#include <utility>

#include "common/point.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "gtest/gtest.h"

namespace disc {
namespace {

Point MakePoint(PointId id, double x, double y) {
  Point p;
  p.id = id;
  p.dims = 2;
  p.x[0] = x;
  p.x[1] = y;
  return p;
}

TEST(PointTest, SquaredDistanceIsEuclidean) {
  const Point a = MakePoint(0, 0.0, 0.0);
  const Point b = MakePoint(1, 3.0, 4.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, a), 0.0);
}

TEST(PointTest, SquaredDistanceUsesOnlyDeclaredDims) {
  Point a = MakePoint(0, 1.0, 2.0);
  Point b = MakePoint(1, 1.0, 2.0);
  a.x[2] = 100.0;  // Beyond dims; must be ignored.
  b.x[2] = -100.0;
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 0.0);
}

TEST(PointTest, WithinEpsBoundaryIsInclusive) {
  const Point a = MakePoint(0, 0.0, 0.0);
  const Point b = MakePoint(1, 1.0, 0.0);
  EXPECT_TRUE(WithinEps(a, b, 1.0));
  EXPECT_FALSE(WithinEps(a, b, 0.999));
}

TEST(PointTest, ValidityChecks) {
  Point p = MakePoint(0, 1.0, 2.0);
  EXPECT_TRUE(IsValidPoint(p));
  p.x[1] = std::nan("");
  EXPECT_FALSE(IsValidPoint(p));
  p.x[1] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(IsValidPoint(p));
  p.x[1] = 0.0;
  p.dims = 0;
  EXPECT_FALSE(IsValidPoint(p));
  p.dims = kMaxDims + 1;
  EXPECT_FALSE(IsValidPoint(p));
}

TEST(PointTest, ToStringMentionsIdAndCoords) {
  const Point p = MakePoint(7, 1.5, -2.0);
  const std::string s = ToString(p);
  EXPECT_NE(s.find("#7"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("-2"), std::string::npos);
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0.0, 1.0), b.Uniform(0.0, 1.0));
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(StatsTest, AccumulatesMinMaxMean) {
  StatsAccumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  acc.Add(2.0);
  acc.Add(4.0);
  acc.Add(-1.0);
  EXPECT_EQ(acc.count(), 3);
  EXPECT_DOUBLE_EQ(acc.min(), -1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.mean(), 5.0 / 3.0, 1e-12);
}

TEST(StatusTest, DefaultAndOkAreSuccessWithEmptyMessage) {
  Status def;
  EXPECT_TRUE(def.ok());
  EXPECT_TRUE(def.message().empty());

  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(ok.message().empty());
}

TEST(StatusTest, ErrorCarriesTheMessage) {
  Status err = Status::Error("spill dir unset");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "spill dir unset");

  // The message survives copies and moves intact.
  Status copy = err;
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.message(), "spill dir unset");
  Status moved = std::move(err);
  EXPECT_FALSE(moved.ok());
  EXPECT_EQ(moved.message(), "spill dir unset");
}

TEST(StatusTest, OperatorBoolReadsAsSuccess) {
  // `if (status)` means "the operation succeeded" — true for OK, false for
  // errors, and explicit (no accidental integer conversions).
  Status ok = Status::Ok();
  Status err = Status::Error("boom");
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_FALSE(static_cast<bool>(err));
  if (err) {
    FAIL() << "an error Status must not read as success";
  }
  if (!ok) {
    FAIL() << "an OK Status must read as success";
  }
  static_assert(!std::is_convertible_v<Status, bool>,
                "operator bool must stay explicit");
}

}  // namespace
}  // namespace disc
