#include <set>
#include <vector>

#include "common/point.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "index/grid_index.h"

namespace disc {
namespace {

Point P2(PointId id, double x, double y) {
  Point p;
  p.id = id;
  p.dims = 2;
  p.x[0] = x;
  p.x[1] = y;
  return p;
}

TEST(GridIndexTest, InsertDeleteBookkeeping) {
  GridIndex grid(2, 0.5);
  grid.Insert(P2(1, 0.1, 0.1));
  grid.Insert(P2(2, 0.2, 0.2));
  grid.Insert(P2(3, 3.0, 3.0));
  EXPECT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid.num_cells(), 2u);
  EXPECT_TRUE(grid.Delete(P2(2, 0.2, 0.2)));
  EXPECT_FALSE(grid.Delete(P2(2, 0.2, 0.2)));
  EXPECT_EQ(grid.size(), 2u);
  EXPECT_TRUE(grid.Delete(P2(3, 3.0, 3.0)));
  EXPECT_EQ(grid.num_cells(), 1u);  // Emptied cell erased.
}

TEST(GridIndexTest, NegativeCoordinatesLandInDistinctCells) {
  GridIndex grid(2, 1.0);
  grid.Insert(P2(1, -0.5, -0.5));
  grid.Insert(P2(2, 0.5, 0.5));
  const CellCoord a = grid.CellOf(P2(0, -0.5, -0.5));
  const CellCoord b = grid.CellOf(P2(0, 0.5, 0.5));
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.c[0], -1);
  EXPECT_EQ(b.c[0], 0);
}

TEST(GridIndexTest, RangeSearchMatchesBruteForce) {
  Rng rng(3);
  std::vector<Point> pts;
  GridIndex grid(2, 0.37);
  for (PointId id = 0; id < 600; ++id) {
    Point p = P2(id, rng.Uniform(-5.0, 5.0), rng.Uniform(-5.0, 5.0));
    pts.push_back(p);
    grid.Insert(p);
  }
  for (int q = 0; q < 50; ++q) {
    const Point c = P2(10000, rng.Uniform(-5.0, 5.0), rng.Uniform(-5.0, 5.0));
    const double eps = rng.Uniform(0.1, 1.5);
    std::set<PointId> expected;
    for (const Point& p : pts) {
      if (WithinEps(p, c, eps)) expected.insert(p.id);
    }
    std::set<PointId> got;
    grid.RangeSearch(c, eps, [&](PointId id, const Point&) { got.insert(id); });
    ASSERT_EQ(got, expected) << "query " << q;
    ASSERT_EQ(grid.RangeCount(c, eps), expected.size());
  }
}

TEST(GridIndexTest, NeighborCellIterationCoversRadius) {
  GridIndex grid(2, 1.0);
  for (int x = -2; x <= 2; ++x) {
    for (int y = -2; y <= 2; ++y) {
      grid.Insert(P2(static_cast<PointId>((x + 10) * 100 + y + 10),
                     x + 0.5, y + 0.5));
    }
  }
  const CellCoord center = grid.CellOf(P2(0, 0.5, 0.5));
  std::size_t cells = 0, points = 0;
  grid.ForEachNeighborCell(center, 1,
                           [&](const CellCoord&, const std::vector<Point>& v) {
                             ++cells;
                             points += v.size();
                           });
  EXPECT_EQ(cells, 9u);
  EXPECT_EQ(points, 9u);
}

TEST(GridIndexTest, ForEachCellVisitsEveryNonEmptyCell) {
  GridIndex grid(3, 2.0);
  Rng rng(4);
  for (PointId id = 0; id < 100; ++id) {
    Point p;
    p.id = id;
    p.dims = 3;
    for (int d = 0; d < 3; ++d) p.x[d] = rng.Uniform(0.0, 10.0);
    grid.Insert(p);
  }
  std::size_t total = 0;
  grid.ForEachCell(
      [&](const CellCoord&, const std::vector<Point>& v) { total += v.size(); });
  EXPECT_EQ(total, 100u);
}

}  // namespace
}  // namespace disc
