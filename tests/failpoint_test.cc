// Failpoint registry semantics: unarmed sites are invisible no-ops, armed
// rules inject Status / throw / short-write / delay exactly as planned,
// fire decisions are a pure function of (seed, site, hit index) — identical
// across re-runs and thread interleavings — and per-site hit/fire counters
// survive Disarm and export through MetricsRegistry.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "obs/log.h"
#include "obs/metrics_registry.h"

namespace disc {
namespace {

using failpoint::FailAction;
using failpoint::FailPlan;
using failpoint::FailRule;
using failpoint::InjectedFault;
using failpoint::Registry;
using failpoint::ScopedFailPlan;

// A Status-returning function with one failpoint, standing in for any
// production seam (checkpoint save, engine feed, ...).
Status GuardedOperation() {
  DISC_FAILPOINT_STATUS("test.op.guarded");
  return Status::Ok();
}

// A void seam: only throw/delay can surface here.
void VoidOperation() { DISC_FAILPOINT("test.op.void"); }

FailRule Rule(const std::string& site, FailAction action) {
  FailRule rule;
  rule.site = site;
  rule.action = action;
  return rule;
}

TEST(FailpointTest, UnarmedSitesAreInvisible) {
  ASSERT_FALSE(failpoint::Armed());
  EXPECT_TRUE(GuardedOperation().ok());
  VoidOperation();  // Must not throw.
  // Unarmed hits never touch the registry — not even the hit counter.
  EXPECT_EQ(Registry::Instance().Hits("test.op.guarded"), 0u);
  EXPECT_EQ(Registry::Instance().Hits("test.op.void"), 0u);
}

TEST(FailpointTest, StatusInjectionReturnsTheInjectedError) {
  FailPlan plan;
  plan.seed = 1;
  plan.rules.push_back(Rule("test.op.guarded", FailAction::kStatus));
  plan.rules.back().message = "disk on fire";
  ScopedFailPlan armed(std::move(plan));
  const Status status = GuardedOperation();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "disk on fire");
  EXPECT_EQ(Registry::Instance().Hits("test.op.guarded"), 1u);
  EXPECT_EQ(Registry::Instance().Fires("test.op.guarded"), 1u);
}

TEST(FailpointTest, DefaultMessageNamesTheSite) {
  FailPlan plan;
  plan.rules.push_back(Rule("test.op.guarded", FailAction::kStatus));
  ScopedFailPlan armed(std::move(plan));
  const Status status = GuardedOperation();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("test.op.guarded"), std::string::npos);
}

TEST(FailpointTest, ThrowInjectionThrowsInjectedFault) {
  FailPlan plan;
  plan.rules.push_back(Rule("test.op.void", FailAction::kThrow));
  ScopedFailPlan armed(std::move(plan));
  EXPECT_THROW(VoidOperation(), InjectedFault);
  // A kStatus rule at a void site still surfaces (as a throw) rather than
  // silently vanishing.
  Registry::Instance().Arm([] {
    FailPlan p;
    p.rules.push_back(Rule("test.op.void", FailAction::kStatus));
    return p;
  }());
  EXPECT_THROW(VoidOperation(), InjectedFault);
  Registry::Instance().Disarm();  // The ScopedFailPlan's plan was replaced.
}

TEST(FailpointTest, SkipAndMaxFiresWindowTheFires) {
  FailPlan plan;
  plan.rules.push_back(Rule("test.op.guarded", FailAction::kStatus));
  plan.rules.back().skip = 2;
  plan.rules.back().max_fires = 1;
  ScopedFailPlan armed(std::move(plan));
  EXPECT_TRUE(GuardedOperation().ok());   // Hit 0: skipped.
  EXPECT_TRUE(GuardedOperation().ok());   // Hit 1: skipped.
  EXPECT_FALSE(GuardedOperation().ok());  // Hit 2: fires.
  EXPECT_TRUE(GuardedOperation().ok());   // Hit 3: max_fires exhausted.
  EXPECT_EQ(Registry::Instance().Hits("test.op.guarded"), 4u);
  EXPECT_EQ(Registry::Instance().Fires("test.op.guarded"), 1u);
}

// The probability draw depends only on (seed, site, hit index): two runs
// with the same seed produce the same fire pattern bit for bit; a
// different seed produces a different pattern (200 Bernoulli(1/2) draws
// colliding is a 2^-200 event).
TEST(FailpointTest, SeededFirePatternIsReproducible) {
  constexpr int kHits = 200;
  const auto pattern = [](std::uint64_t seed) {
    FailPlan plan;
    plan.seed = seed;
    plan.rules.push_back(Rule("test.op.guarded", FailAction::kStatus));
    plan.rules.back().probability = 0.5;
    ScopedFailPlan armed(std::move(plan));
    std::vector<bool> fired;
    fired.reserve(kHits);
    for (int i = 0; i < kHits; ++i) fired.push_back(!GuardedOperation().ok());
    return fired;
  };
  const std::vector<bool> a1 = pattern(12345);
  const std::vector<bool> a2 = pattern(12345);
  const std::vector<bool> b = pattern(54321);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  // And the pattern is genuinely mixed, not all-or-nothing.
  const int fires = static_cast<int>(std::count(a1.begin(), a1.end(), true));
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, kHits);
}

// Thread interleaving cannot change the number of fires: the decision for
// hit #i is fixed, whichever thread lands on it.
TEST(FailpointTest, FireCountIsThreadingInvariant) {
  constexpr int kThreads = 4;
  constexpr int kHitsPerThread = 64;
  const auto total_fires = [](bool threaded) {
    FailPlan plan;
    plan.seed = 99;
    plan.rules.push_back(Rule("test.op.void", FailAction::kStatus));
    plan.rules.back().probability = 0.5;
    ScopedFailPlan armed(std::move(plan));
    if (threaded) {
      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
          for (int i = 0; i < kHitsPerThread; ++i) {
            try {
              VoidOperation();
            } catch (const InjectedFault&) {
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
    } else {
      for (int i = 0; i < kThreads * kHitsPerThread; ++i) {
        try {
          VoidOperation();
        } catch (const InjectedFault&) {
        }
      }
    }
    return Registry::Instance().Fires("test.op.void");
  };
  EXPECT_EQ(total_fires(true), total_fires(false));
  EXPECT_EQ(Registry::Instance().Hits("test.op.void"),
            static_cast<std::uint64_t>(kThreads * kHitsPerThread));
}

TEST(FailpointTest, ShortWritePoisonsTheStreamAfterAPrefix) {
  FailPlan plan;
  plan.rules.push_back(Rule("test.op.stream", FailAction::kShortWrite));
  plan.rules.back().skip = 1;
  ScopedFailPlan armed(std::move(plan));
  std::ostringstream os;
  os << "header;";
  DISC_FAILPOINT_STREAM("test.op.stream", os);  // Hit 0: skipped.
  ASSERT_TRUE(os.good());
  os << "record0;";
  DISC_FAILPOINT_STREAM("test.op.stream", os);  // Hit 1: fires.
  EXPECT_FALSE(os.good());
  os << "record1;";  // Swallowed by the poisoned stream.
  EXPECT_EQ(os.str(), "header;record0;");
}

TEST(FailpointTest, SendBudgetCapsAFiredWrite) {
  FailPlan plan;
  plan.rules.push_back(Rule("test.op.send", FailAction::kShortWrite));
  plan.rules.back().short_write_limit = 10;
  plan.rules.back().max_fires = 1;
  ScopedFailPlan armed(std::move(plan));
  EXPECT_EQ(failpoint::HitSendBudget("test.op.send", 100), 10u);
  EXPECT_EQ(failpoint::HitSendBudget("test.op.send", 100), 100u);
}

TEST(FailpointTest, DelayFiresWithoutFailing) {
  FailPlan plan;
  plan.rules.push_back(Rule("test.op.guarded", FailAction::kDelay));
  plan.rules.back().delay_ms = 1;
  ScopedFailPlan armed(std::move(plan));
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(Registry::Instance().Fires("test.op.guarded"), 1u);
}

TEST(FailpointTest, CountersSurviveDisarmAndExport) {
  {
    FailPlan plan;
    plan.rules.push_back(Rule("test.op.guarded", FailAction::kStatus));
    plan.rules.back().max_fires = 2;
    ScopedFailPlan armed(std::move(plan));
    EXPECT_FALSE(GuardedOperation().ok());
    EXPECT_FALSE(GuardedOperation().ok());
    EXPECT_TRUE(GuardedOperation().ok());
    // A site with no rule is still counted while armed, never fired.
    VoidOperation();
  }
  ASSERT_FALSE(failpoint::Armed());
  EXPECT_EQ(Registry::Instance().Hits("test.op.guarded"), 3u);
  EXPECT_EQ(Registry::Instance().Fires("test.op.guarded"), 2u);
  EXPECT_EQ(Registry::Instance().Hits("test.op.void"), 1u);
  EXPECT_EQ(Registry::Instance().Fires("test.op.void"), 0u);

  obs::MetricsRegistry metrics;
  Registry::Instance().ExportCounters(metrics);
  EXPECT_EQ(metrics.counter("disc_failpoint_hits_test_op_guarded").value(),
            3u);
  EXPECT_EQ(metrics.counter("disc_failpoint_fires_test_op_guarded").value(),
            2u);
  std::ostringstream os;
  metrics.WritePrometheus(os);
  EXPECT_NE(os.str().find("disc_failpoint_fires_test_op_guarded 2"),
            std::string::npos);
  // Re-export is idempotent (counters are topped up, not double-added).
  Registry::Instance().ExportCounters(metrics);
  EXPECT_EQ(metrics.counter("disc_failpoint_hits_test_op_guarded").value(),
            3u);
}

TEST(FailpointTest, EveryFireEmitsAStructuredLogEvent) {
  class CaptureSink : public obs::LogSink {
   public:
    void Write(const obs::LogRecord& record) override {
      std::lock_guard<std::mutex> lock(mutex_);
      records_.push_back(record);
    }
    std::vector<obs::LogRecord> records() {
      std::lock_guard<std::mutex> lock(mutex_);
      return records_;
    }

   private:
    std::mutex mutex_;
    std::vector<obs::LogRecord> records_;
  };
  CaptureSink sink;
  // Earlier tests in this binary fired hundreds of times through the same
  // log site; lift the per-site rate limit so this fire is not suppressed.
  obs::SetLogRateLimit(0.0, 0.0);
  obs::LogSink* previous = obs::SetLogSink(&sink);
  {
    FailPlan plan;
    plan.rules.push_back(Rule("test.op.guarded", FailAction::kStatus));
    ScopedFailPlan armed(std::move(plan));
    EXPECT_FALSE(GuardedOperation().ok());
  }
  obs::SetLogSink(previous);
  obs::SetLogRateLimit(5.0, 10.0);  // Back to the defaults.
  bool saw_fire = false;
  for (const obs::LogRecord& record : sink.records()) {
    if (record.event != "failpoint.fired") continue;
    saw_fire = true;
    EXPECT_NE(record.json.find("test.op.guarded"), std::string::npos);
    EXPECT_NE(record.json.find("\"action\":\"status\""), std::string::npos);
  }
  EXPECT_TRUE(saw_fire);
}

}  // namespace
}  // namespace disc
