// Figure 11: per-point update latency of DISC vs rho2-DBSCAN with a varying
// distance threshold eps, on Maze and DTG (stride 5%). The paper's claim:
// DISC wins for every practically useful eps; rho2-DBSCAN only overtakes at
// distance thresholds so large that the clustering has degenerated into one
// giant cluster. The "clusters" column shows that degeneration.

#include <cstdio>

#include "baselines/dbscan.h"
#include "baselines/rho_dbscan.h"
#include "bench/datasets.h"
#include "core/disc.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

// Cluster count of a fresh DBSCAN over one full window at this eps — shows
// when the threshold stops being meaningful.
std::size_t ClusterCount(const bench::DatasetSpec& spec, double eps) {
  auto source = spec.make(99);
  std::vector<Point> window;
  window.reserve(spec.window);
  for (std::size_t i = 0; i < spec.window; ++i) {
    window.push_back(source->Next().point);
  }
  return RunDbscan(window, eps, spec.tau).snapshot.NumClusters();
}

void Sweep(const bench::DatasetSpec& spec, const std::vector<double>& epses,
           int slides, Table* table) {
  const std::size_t stride = std::max<std::size_t>(1, spec.window / 20);
  for (double eps : epses) {
    auto source = spec.make(1234);
    StreamData data =
        MakeStreamData(*source, spec.window, stride, 1, slides);

    DiscConfig config;
    config.eps = eps;
    config.tau = spec.tau;
    Disc disc_method(spec.dims, config);
    const double disc_us =
        RunMethod(data, &disc_method, MeasureOptions{}).per_point_latency_us;

    RhoDbscan::Options ro;
    ro.eps = eps;
    ro.tau = spec.tau;
    ro.rho = 0.001;
    RhoDbscan rho_method(spec.dims, ro);
    const double rho_us =
        RunMethod(data, &rho_method, MeasureOptions{}).per_point_latency_us;

    table->AddRow({spec.name, Table::Num(eps, 4), Table::Num(disc_us, 2),
                   Table::Num(rho_us, 2),
                   std::to_string(ClusterCount(spec, eps))});
  }
}

void Run(double scale, int slides) {
  Table table({"dataset", "eps", "DISC_us/pt", "rho2_us/pt", "clusters"});
  Sweep(bench::MazeSpec(scale, 24000),
        {0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2}, slides, &table);
  Sweep(bench::DtgSpec(scale), {0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512},
        slides, &table);
  std::printf(
      "== Fig. 11: update latency with varying eps (DISC vs rho2-DBSCAN, "
      "rho=0.001) ==\n%s\n",
      table.ToText().c_str());
  std::printf("CSV:\n%s", table.ToCsv().c_str());
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  disc::Run(args.scale, args.slides);
  return 0;
}
