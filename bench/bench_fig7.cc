// Figure 7: number of range searches executed per slide.
//  (a) DISC vs IncDBSCAN on all four datasets, stride fixed at 5%.
//  (b) DTG: both methods relative to DBSCAN across stride-to-window ratios
//      (DBSCAN issues roughly one search per window point on every slide).

#include <cstdio>

#include "baselines/dbscan.h"
#include "baselines/inc_dbscan.h"
#include "bench/datasets.h"
#include "core/disc.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace disc {
namespace {

struct Counts {
  double disc = 0.0;
  double inc = 0.0;
  double dbscan = 0.0;
};

Counts Measure(const bench::DatasetSpec& spec, std::size_t stride, int slides,
               bool with_dbscan) {
  auto source = spec.make(1234);
  StreamData data = MakeStreamData(*source, spec.window, stride, 1, slides);

  DiscConfig config;
  config.eps = spec.eps;
  config.tau = spec.tau;
  Counts counts;

  Disc disc_method(spec.dims, config);
  MeasureOptions disc_opts;
  disc_opts.searches_probe = [&] {
    return disc_method.last_metrics().range_searches;
  };
  counts.disc = RunMethod(data, &disc_method, disc_opts).avg_range_searches;

  IncDbscan inc(spec.dims, config);
  MeasureOptions inc_opts;
  inc_opts.searches_probe = [&] { return inc.last_range_searches(); };
  counts.inc = RunMethod(data, &inc, inc_opts).avg_range_searches;

  if (with_dbscan) {
    DbscanClusterer dbscan(spec.dims, spec.eps, spec.tau);
    MeasureOptions db_opts;
    db_opts.searches_probe = [&] { return dbscan.last_range_searches(); };
    counts.dbscan = RunMethod(data, &dbscan, db_opts).avg_range_searches;
  }
  return counts;
}

void Run(double scale, int slides) {
  // (a) Per dataset at 5% stride.
  Table a({"dataset", "DISC", "IncDBSCAN"});
  for (const bench::DatasetSpec& spec : bench::StandardDatasets(scale)) {
    const Counts c =
        Measure(spec, std::max<std::size_t>(1, spec.window / 20), slides,
                /*with_dbscan=*/false);
    a.AddRow({spec.name, Table::Num(c.disc, 0), Table::Num(c.inc, 0)});
  }
  std::printf("== Fig. 7(a): range searches per slide (5%% stride) ==\n%s\n",
              a.ToText().c_str());

  // (b) DTG across stride ratios, relative to DBSCAN.
  Table b({"stride%", "DBSCAN", "DISC", "IncDBSCAN", "DISC/DBSCAN",
           "Inc/DBSCAN"});
  const bench::DatasetSpec spec = bench::DtgSpec(scale);
  for (double ratio : {0.001, 0.005, 0.01, 0.05, 0.10, 0.25}) {
    const std::size_t stride =
        std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(spec.window) * ratio));
    const Counts c = Measure(spec, stride, slides, /*with_dbscan=*/true);
    b.AddRow({Table::Num(ratio * 100.0, 1), Table::Num(c.dbscan, 0),
              Table::Num(c.disc, 0), Table::Num(c.inc, 0),
              Table::Num(c.disc / c.dbscan, 3),
              Table::Num(c.inc / c.dbscan, 3)});
  }
  std::printf(
      "== Fig. 7(b): range searches relative to DBSCAN (DTG) ==\n%s\n",
      b.ToText().c_str());
  std::printf("CSV (a):\n%sCSV (b):\n%s", a.ToCsv().c_str(), b.ToCsv().c_str());
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  disc::Run(args.scale, args.slides);
  return 0;
}
