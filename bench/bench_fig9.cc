// Figure 9: Maze — clustering quality (ARI against the generator's
// ground-truth trajectory labels) and per-point update latency with a
// varying window size, stride 5%. Methods: DISC, rho2-DBSCAN at high and low
// accuracy, DBSTREAM, and EDMStream (summarization methods are insert-only;
// their latency covers insertions, as in the paper).

#include <cstdio>
#include <memory>

#include "bench/datasets.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "stream/clusterer_factory.h"

namespace disc {
namespace {

void AddRow(Table* table, const std::string& window,
            const MethodStats& stats) {
  table->AddRow({window, stats.name, Table::Num(stats.avg_ari_truth, 3),
                 Table::Num(stats.avg_purity_truth, 3),
                 Table::Num(stats.avg_nmi_truth, 3),
                 Table::Num(stats.per_point_latency_us, 2)});
}

void Run(double scale, int slides) {
  Table table({"window", "method", "ARI", "purity", "NMI", "latency_us/pt"});
  for (std::size_t window : {6000, 12000, 24000, 48000}) {
    const bench::DatasetSpec spec =
        bench::MazeSpec(scale, window);
    const std::size_t stride = std::max<std::size_t>(1, spec.window / 20);
    auto source = spec.make(1234);
    StreamData data =
        MakeStreamData(*source, spec.window, stride, 1, slides);
    MeasureOptions opts;
    opts.ari_vs_truth = true;

    ClustererSpec cs = bench::TunedClustererSpec(spec, stride);
    const std::unique_ptr<StreamClusterer> disc_method =
        MakeClusterer("DISC", cs);
    AddRow(&table, std::to_string(spec.window),
           RunMethod(data, disc_method.get(), opts));

    for (double rho : {0.1, 0.001}) {
      cs.rho = rho;
      const std::unique_ptr<StreamClusterer> rho_method =
          MakeClusterer("rho-DBSCAN", cs);
      AddRow(&table, std::to_string(spec.window),
             RunMethod(data, rho_method.get(), opts));
    }

    const std::unique_ptr<StreamClusterer> dbs = MakeClusterer("DBSTREAM", cs);
    AddRow(&table, std::to_string(spec.window),
           RunMethod(data, dbs.get(), opts));

    const std::unique_ptr<StreamClusterer> edm = MakeClusterer("EDMStream", cs);
    AddRow(&table, std::to_string(spec.window),
           RunMethod(data, edm.get(), opts));
  }
  std::printf(
      "== Fig. 9: Maze — ARI vs ground truth and per-point update latency "
      "==\n%s\n",
      table.ToText().c_str());
  std::printf("CSV:\n%s", table.ToCsv().c_str());
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  disc::Run(args.scale, args.slides);
  return 0;
}
