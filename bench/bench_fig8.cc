// Figure 8: effect of the two Section-IV optimizations. DISC runs on every
// dataset with stride 5% under four settings: no optimization, epoch-based
// probing only, MS-BFS only, and both (the default).

#include <cstdio>

#include "bench/datasets.h"
#include "core/disc.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace disc {
namespace {

double MeasureVariant(const bench::DatasetSpec& spec, bool msbfs, bool epoch,
                      int slides) {
  const std::size_t stride = std::max<std::size_t>(1, spec.window / 20);
  auto source = spec.make(1234);
  StreamData data = MakeStreamData(*source, spec.window, stride, 1, slides);
  DiscConfig config;
  config.eps = spec.eps;
  config.tau = spec.tau;
  config.use_msbfs = msbfs;
  config.use_epoch_probing = epoch;
  Disc method(spec.dims, config);
  return RunMethod(data, &method, MeasureOptions{}).avg_update_ms;
}

void Run(double scale, int slides) {
  Table table({"dataset", "none_ms", "epoch_ms", "msbfs_ms", "both_ms",
               "both_speedup"});
  for (const bench::DatasetSpec& spec : bench::StandardDatasets(scale)) {
    const double none = MeasureVariant(spec, false, false, slides);
    const double epoch = MeasureVariant(spec, false, true, slides);
    const double msbfs = MeasureVariant(spec, true, false, slides);
    const double both = MeasureVariant(spec, true, true, slides);
    table.AddRow({spec.name, Table::Num(none, 2), Table::Num(epoch, 2),
                  Table::Num(msbfs, 2), Table::Num(both, 2),
                  Table::Num(none / both, 2)});
  }
  std::printf(
      "== Fig. 8: effect of MS-BFS and epoch-based probing (elapsed ms per "
      "slide, 5%% stride) ==\n%s\n",
      table.ToText().c_str());
  std::printf("CSV:\n%s", table.ToCsv().c_str());
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  disc::Run(args.scale, args.slides);
  return 0;
}
