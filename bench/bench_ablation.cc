// Ablations of this implementation's own design choices (called out in
// DESIGN.md), beyond the paper's Fig. 8:
//   (a) R-tree fanout (max entries per node);
//   (b) the border-witness shortcut in the Sec.-V label recheck;
//   (c) R-tree bulk loading vs. repeated insertion for from-scratch DBSCAN;
//   (d) index probing vs. a materialized eps-graph — the alternative the
//       paper's Sec. IV rejects for its O(n^2) maintenance cost. The sweep
//       over eps shows where each side wins: the graph variant's per-slide
//       cost and memory grow with neighborhood size (maintenance), while
//       index-backed DISC pays range searches but stays lean.

#include <cstdio>

#include "baselines/dbscan.h"
#include "baselines/graph_disc.h"
#include "bench/datasets.h"
#include "common/timer.h"
#include "core/disc.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace disc {
namespace {

double MeasureDisc(const bench::DatasetSpec& spec, const DiscConfig& config,
                   int slides) {
  const std::size_t stride = std::max<std::size_t>(1, spec.window / 20);
  auto source = spec.make(1234);
  StreamData data = MakeStreamData(*source, spec.window, stride, 1, slides);
  Disc method(spec.dims, config);
  return RunMethod(data, &method, MeasureOptions{}).avg_update_ms;
}

void Run(double scale, int slides) {
  // (a) R-tree fanout.
  Table fanout({"dataset", "fanout", "DISC_ms"});
  for (const bench::DatasetSpec& spec :
       {bench::DtgSpec(scale), bench::CovidSpec(scale)}) {
    for (int entries : {4, 8, 16, 32, 64}) {
      DiscConfig config;
      config.eps = spec.eps;
      config.tau = spec.tau;
      config.rtree_max_entries = entries;
      fanout.AddRow({spec.name, std::to_string(entries),
                     Table::Num(MeasureDisc(spec, config, slides), 2)});
    }
  }
  std::printf("== Ablation (a): R-tree fanout ==\n%s\n",
              fanout.ToText().c_str());

  // (b) Border-witness shortcut.
  Table witness({"dataset", "witness", "DISC_ms"});
  for (const bench::DatasetSpec& spec : bench::StandardDatasets(scale)) {
    for (bool use : {true, false}) {
      DiscConfig config;
      config.eps = spec.eps;
      config.tau = spec.tau;
      config.use_border_witness = use;
      witness.AddRow({spec.name, use ? "on" : "off",
                      Table::Num(MeasureDisc(spec, config, slides), 2)});
    }
  }
  std::printf("== Ablation (b): border-witness shortcut ==\n%s\n",
              witness.ToText().c_str());

  // (c) Bulk load vs. repeated insertion (index construction only).
  Table load({"dataset", "method", "build_ms"});
  for (const bench::DatasetSpec& spec : bench::StandardDatasets(scale)) {
    auto source = spec.make(7);
    std::vector<Point> pts;
    pts.reserve(spec.window);
    for (std::size_t i = 0; i < spec.window; ++i) {
      pts.push_back(source->Next().point);
    }
    {
      Timer t;
      RTree tree(spec.dims);
      for (const Point& p : pts) tree.Insert(p);
      load.AddRow({spec.name, "insert", Table::Num(t.ElapsedMillis(), 2)});
    }
    {
      Timer t;
      RTree tree(spec.dims);
      tree.BulkLoad(pts);
      load.AddRow({spec.name, "bulk(STR)", Table::Num(t.ElapsedMillis(), 2)});
    }
  }
  std::printf("== Ablation (c): index construction ==\n%s\n",
              load.ToText().c_str());

  // (d) Index-probing DISC vs. materialized-graph DISC across eps.
  Table graph({"eps", "DISC_ms", "graph_ms", "graph_MB", "edges"});
  {
    const bench::DatasetSpec spec = bench::DtgSpec(scale);
    const std::size_t stride = std::max<std::size_t>(1, spec.window / 20);
    for (double factor : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      const double eps = spec.eps * factor;
      DiscConfig config;
      config.eps = eps;
      config.tau = spec.tau;

      auto source_a = spec.make(1234);
      StreamData data =
          MakeStreamData(*source_a, spec.window, stride, 1, slides);
      Disc index_backed(spec.dims, config);
      const double index_ms =
          RunMethod(data, &index_backed, MeasureOptions{}).avg_update_ms;

      GraphDisc graph_backed(spec.dims, config);
      const double graph_ms =
          RunMethod(data, &graph_backed, MeasureOptions{}).avg_update_ms;

      graph.AddRow({Table::Num(eps, 3), Table::Num(index_ms, 2),
                    Table::Num(graph_ms, 2),
                    Table::Num(static_cast<double>(
                                   graph_backed.ApproxMemoryBytes()) /
                                   (1024.0 * 1024.0),
                               1),
                    std::to_string(graph_backed.total_edges())});
    }
  }
  std::printf(
      "== Ablation (d): index probing vs. materialized eps-graph (DTG) "
      "==\n%s\n",
      graph.ToText().c_str());

  std::printf("CSV (a):\n%sCSV (b):\n%sCSV (c):\n%sCSV (d):\n%s",
              fanout.ToCsv().c_str(), witness.ToCsv().c_str(),
              load.ToCsv().c_str(), graph.ToCsv().c_str());
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  disc::Run(args.scale, args.slides);
  return 0;
}
