#ifndef DISC_BENCH_DATASETS_H_
#define DISC_BENCH_DATASETS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stream/clusterer_factory.h"
#include "stream/covid_generator.h"
#include "stream/dtg_generator.h"
#include "stream/geolife_generator.h"
#include "stream/iris_generator.h"
#include "stream/maze_generator.h"
#include "stream/stream_source.h"

namespace disc {
namespace bench {

// One benchmark dataset: a generator plus the Table II defaults (density
// threshold tau, distance threshold eps, window size), scaled from the
// paper's sizes to a single-core machine. Window sizes keep the paper's
// stride/window and density regimes; see DESIGN.md §4.
struct DatasetSpec {
  std::string name;
  std::uint32_t dims;
  double eps;
  std::uint32_t tau;
  std::size_t window;
  std::function<std::unique_ptr<StreamSource>(std::uint64_t seed)> make;
};

inline DatasetSpec DtgSpec(double scale = 1.0) {
  DatasetSpec spec;
  spec.name = "DTG";
  spec.dims = 2;
  spec.eps = 0.02;
  spec.tau = 14;
  spec.window = static_cast<std::size_t>(20000 * scale);
  spec.make = [](std::uint64_t seed) -> std::unique_ptr<StreamSource> {
    DtgGenerator::Options o;
    o.seed = seed;
    return std::make_unique<DtgGenerator>(o);
  };
  return spec;
}

inline DatasetSpec GeolifeSpec(double scale = 1.0) {
  DatasetSpec spec;
  spec.name = "GeoLife";
  spec.dims = 3;
  spec.eps = 0.06;
  spec.tau = 7;
  spec.window = static_cast<std::size_t>(10000 * scale);
  spec.make = [](std::uint64_t seed) -> std::unique_ptr<StreamSource> {
    GeolifeGenerator::Options o;
    o.extent = 15.0;
    o.num_places = 25;
    o.jitter = 0.006;
    o.seed = seed;
    return std::make_unique<GeolifeGenerator>(o);
  };
  return spec;
}

inline DatasetSpec CovidSpec(double scale = 1.0) {
  DatasetSpec spec;
  spec.name = "COVID-19";
  spec.dims = 2;
  spec.eps = 1.2;
  spec.tau = 5;
  spec.window = static_cast<std::size_t>(5000 * scale);
  spec.make = [](std::uint64_t seed) -> std::unique_ptr<StreamSource> {
    CovidGenerator::Options o;
    o.seed = seed;
    return std::make_unique<CovidGenerator>(o);
  };
  return spec;
}

inline DatasetSpec IrisSpec(double scale = 1.0) {
  DatasetSpec spec;
  spec.name = "IRIS";
  spec.dims = 4;
  spec.eps = 2.0;
  spec.tau = 9;
  spec.window = static_cast<std::size_t>(10000 * scale);
  spec.make = [](std::uint64_t seed) -> std::unique_ptr<StreamSource> {
    IrisGenerator::Options o;
    o.seed = seed;
    return std::make_unique<IrisGenerator>(o);
  };
  return spec;
}

inline DatasetSpec MazeSpec(double scale = 1.0,
                            std::size_t window = 24000) {
  DatasetSpec spec;
  spec.name = "Maze";
  spec.dims = 2;
  spec.eps = 0.1;
  spec.tau = 5;
  spec.window = static_cast<std::size_t>(static_cast<double>(window) * scale);
  spec.make = [](std::uint64_t seed) -> std::unique_ptr<StreamSource> {
    MazeGenerator::Options o;
    o.seed = seed;
    return std::make_unique<MazeGenerator>(o);
  };
  return spec;
}

// The four real-dataset analogues of Table II, in paper order.
inline std::vector<DatasetSpec> StandardDatasets(double scale = 1.0) {
  return {DtgSpec(scale), GeolifeSpec(scale), CovidSpec(scale),
          IrisSpec(scale)};
}

// ClustererSpec for MakeClusterer, tuned the way the figure benchmarks
// drive every method on `spec`: exact-method thresholds straight from
// Table II, summarization radii proportional to eps and decay matched to
// the window (the paper's regime; see bench_fig9/10/12).
inline ClustererSpec TunedClustererSpec(const DatasetSpec& spec,
                                        std::size_t stride) {
  ClustererSpec cs;
  cs.dims = spec.dims;
  cs.window_size = spec.window;
  cs.stride = stride;
  cs.disc.eps = spec.eps;
  cs.disc.tau = spec.tau;
  cs.dbstream.radius = 1.5 * spec.eps;
  cs.dbstream.decay_lambda = 4.0 / static_cast<double>(spec.window);
  cs.dbstream.alpha = 0.03;
  cs.dbstream.w_min = 0.3;
  cs.dbstream.eta = 0.02;
  cs.edmstream.radius = 3.0 * spec.eps;
  cs.edmstream.decay_lambda = 4.0 / static_cast<double>(spec.window);
  cs.edmstream.delta_threshold = 10.0 * spec.eps;
  cs.edmstream.rho_min = 1.0;
  return cs;
}

// Minimal command-line parsing shared by the bench binaries: recognizes
// --scale=<F> (workload multiplier) and --slides=<N> (measured slides).
struct BenchArgs {
  double scale = 1.0;
  int slides = 5;
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--scale=", 0) == 0) {
      args.scale = std::stod(a.substr(8));
    } else if (a.rfind("--slides=", 0) == 0) {
      args.slides = std::stoi(a.substr(9));
    }
  }
  return args;
}

}  // namespace bench
}  // namespace disc

#endif  // DISC_BENCH_DATASETS_H_
