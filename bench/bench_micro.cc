// Micro-benchmarks (google-benchmark) for the substrate data structures and
// the DISC-specific mechanisms: R-tree ops, epoch-probed vs plain searches,
// MS-BFS vs sequential connectivity checks, registry operations, and
// per-slide DISC updates on the dataset analogues.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "baselines/graph_disc.h"
#include "baselines/inc_dbscan.h"
#include "bench/datasets.h"
#include "core/cluster_registry.h"
#include "core/disc.h"
#include "core/pipeline.h"
#include "eval/runner.h"
#include "index/grid_index.h"
#include "index/rtree.h"
#include "obs/http_server.h"
#include "obs/log.h"
#include "obs/metrics_registry.h"
#include "obs/sinks.h"
#include "stream/blobs_generator.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

std::vector<Point> RandomPoints(std::size_t n, std::uint32_t dims,
                                double extent, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Point p;
    p.id = i;
    p.dims = dims;
    for (std::uint32_t d = 0; d < dims; ++d) p.x[d] = rng.Uniform(0.0, extent);
    pts.push_back(p);
  }
  return pts;
}

void BM_RTreeInsert(benchmark::State& state) {
  const auto pts = RandomPoints(static_cast<std::size_t>(state.range(0)), 2,
                                100.0, 1);
  for (auto _ : state) {
    RTree tree(2);
    for (const Point& p : pts) tree.Insert(p);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_RTreeDelete(benchmark::State& state) {
  const auto pts = RandomPoints(static_cast<std::size_t>(state.range(0)), 2,
                                100.0, 2);
  for (auto _ : state) {
    state.PauseTiming();
    RTree tree(2);
    for (const Point& p : pts) tree.Insert(p);
    state.ResumeTiming();
    for (const Point& p : pts) tree.Delete(p);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeDelete)->Arg(1000)->Arg(10000);

void BM_RTreeRangeSearch(benchmark::State& state) {
  const auto pts = RandomPoints(20000, 2, 100.0, 3);
  RTree tree(2);
  for (const Point& p : pts) tree.Insert(p);
  const double eps = static_cast<double>(state.range(0)) / 10.0;
  Rng rng(4);
  std::size_t found = 0;
  for (auto _ : state) {
    Point c;
    c.dims = 2;
    c.x[0] = rng.Uniform(0.0, 100.0);
    c.x[1] = rng.Uniform(0.0, 100.0);
    tree.RangeSearch(c, eps, [&](PointId, const Point&) { ++found; });
  }
  benchmark::DoNotOptimize(found);
}
BENCHMARK(BM_RTreeRangeSearch)->Arg(5)->Arg(20)->Arg(80);

void BM_GridRangeSearch(benchmark::State& state) {
  const auto pts = RandomPoints(20000, 2, 100.0, 3);
  const double eps = static_cast<double>(state.range(0)) / 10.0;
  GridIndex grid(2, eps);
  for (const Point& p : pts) grid.Insert(p);
  Rng rng(4);
  std::size_t found = 0;
  for (auto _ : state) {
    Point c;
    c.dims = 2;
    c.x[0] = rng.Uniform(0.0, 100.0);
    c.x[1] = rng.Uniform(0.0, 100.0);
    grid.RangeSearch(c, eps, [&](PointId, const Point&) { ++found; });
  }
  benchmark::DoNotOptimize(found);
}
BENCHMARK(BM_GridRangeSearch)->Arg(5)->Arg(20)->Arg(80);

// Repeatedly sweep one dense region: with epoch probing under a single tick
// the region is consumed once and later sweeps prune at internal entries.
void BM_EpochVsPlainRepeatedSearch(benchmark::State& state) {
  const bool use_epoch = state.range(0) != 0;
  const auto pts = RandomPoints(20000, 2, 100.0, 5);
  RTree tree(2);
  for (const Point& p : pts) tree.Insert(p);
  Rng rng(6);
  for (auto _ : state) {
    const std::uint64_t tick = tree.NewTick();
    Point c;
    c.dims = 2;
    c.x[0] = 50.0;
    c.x[1] = 50.0;
    std::size_t total = 0;
    for (int rep = 0; rep < 32; ++rep) {
      c.x[0] = 45.0 + rng.Uniform(0.0, 10.0);
      c.x[1] = 45.0 + rng.Uniform(0.0, 10.0);
      if (use_epoch) {
        tree.EpochRangeSearch(c, 8.0, tick, [&](PointId, const Point&) {
          ++total;
          return true;
        });
      } else {
        tree.RangeSearch(c, 8.0, [&](PointId, const Point&) { ++total; });
      }
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_EpochVsPlainRepeatedSearch)->Arg(0)->Arg(1);

void BM_ClusterRegistryUnionFind(benchmark::State& state) {
  for (auto _ : state) {
    ClusterRegistry reg;
    std::vector<ClusterId> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) handles.push_back(reg.NewCluster());
    for (int i = 1; i < 10000; ++i) reg.Union(handles[i - 1], handles[i]);
    ClusterId sink = 0;
    for (int i = 0; i < 10000; ++i) sink ^= reg.Find(handles[i]);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 30000);
}
BENCHMARK(BM_ClusterRegistryUnionFind);

// Whole-slide DISC update on a dataset analogue (5% stride, steady state).
void BM_DiscSlide(benchmark::State& state) {
  const auto specs = bench::StandardDatasets(0.5);
  const bench::DatasetSpec& spec = specs[static_cast<std::size_t>(
      state.range(0))];
  const std::size_t stride = std::max<std::size_t>(1, spec.window / 20);
  auto source = spec.make(1234);
  DiscConfig config;
  config.eps = spec.eps;
  config.tau = spec.tau;
  Disc method(spec.dims, config);
  CountBasedWindow window(spec.window, stride);
  // Fill.
  while (!window.full()) {
    WindowDelta d = window.Advance(source->NextPoints(stride));
    method.Update(d.incoming, d.outgoing);
  }
  for (auto _ : state) {
    WindowDelta d = window.Advance(source->NextPoints(stride));
    method.Update(d.incoming, d.outgoing);
  }
  state.SetItemsProcessed(state.iterations() * stride);
  state.SetLabel(spec.name);
}
BENCHMARK(BM_DiscSlide)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// COLLECT scaling across worker-thread counts on a 100k-point window (5%
// stride). Manual time is the COLLECT phase only, straight from the metrics,
// so the sequential CLUSTER phases do not dilute the comparison. On a
// single-core host all thread counts degenerate to roughly the sequential
// time (plus pool overhead); the spread is only visible on multi-core
// hardware.
void BM_DiscCollectThreads(benchmark::State& state) {
  constexpr std::size_t kWindow = 100000;
  constexpr std::size_t kStride = 5000;
  BlobsGenerator::Options o;
  o.num_blobs = 24;
  o.stddev = 0.35;
  o.drift = 0.03;
  o.seed = 29;
  BlobsGenerator source(o);
  DiscConfig config;
  config.eps = 0.25;
  config.tau = 5;
  config.num_threads = static_cast<std::uint32_t>(state.range(0));
  Disc method(2, config);
  CountBasedWindow window(kWindow, kStride);
  while (!window.full()) {
    WindowDelta d = window.Advance(source.NextPoints(kStride));
    method.Update(d.incoming, d.outgoing);
  }
  double collect_total_ms = 0.0;
  for (auto _ : state) {
    WindowDelta d = window.Advance(source.NextPoints(kStride));
    method.Update(d.incoming, d.outgoing);
    const double ms = method.last_metrics().collect_ms;
    collect_total_ms += ms;
    state.SetIterationTime(ms / 1000.0);
  }
  state.SetItemsProcessed(state.iterations() * kStride);
  state.counters["collect_ms"] =
      collect_total_ms / static_cast<double>(state.iterations());
  state.counters["threads"] = static_cast<double>(
      method.last_metrics().threads_used);
}
BENCHMARK(BM_DiscCollectThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseManualTime();

// CLUSTER-stage scaling: drifting blobs keep the ex-core (strided MS-BFS)
// and neo-core (speculative discovery) phases busy every slide. Manual time
// counts only the two CLUSTER phases; cluster_parallel_ms isolates the
// portion spent inside the parallel fan-outs.
void BM_DiscClusterThreads(benchmark::State& state) {
  constexpr std::size_t kWindow = 100000;
  constexpr std::size_t kStride = 5000;
  BlobsGenerator::Options o;
  o.num_blobs = 24;
  o.stddev = 0.35;
  o.drift = 0.03;
  o.seed = 29;
  BlobsGenerator source(o);
  DiscConfig config;
  config.eps = 0.25;
  config.tau = 5;
  config.num_threads = static_cast<std::uint32_t>(state.range(0));
  Disc method(2, config);
  CountBasedWindow window(kWindow, kStride);
  while (!window.full()) {
    WindowDelta d = window.Advance(source.NextPoints(kStride));
    method.Update(d.incoming, d.outgoing);
  }
  double cluster_total_ms = 0.0;
  double parallel_total_ms = 0.0;
  for (auto _ : state) {
    WindowDelta d = window.Advance(source.NextPoints(kStride));
    method.Update(d.incoming, d.outgoing);
    const double ms =
        method.last_metrics().ex_phase_ms + method.last_metrics().neo_phase_ms;
    cluster_total_ms += ms;
    parallel_total_ms += method.last_metrics().cluster_parallel_ms;
    state.SetIterationTime(ms / 1000.0);
  }
  state.SetItemsProcessed(state.iterations() * kStride);
  state.counters["cluster_ms"] =
      cluster_total_ms / static_cast<double>(state.iterations());
  state.counters["cluster_parallel_ms"] =
      parallel_total_ms / static_cast<double>(state.iterations());
  state.counters["threads"] = static_cast<double>(
      method.last_metrics().threads_used);
}
BENCHMARK(BM_DiscClusterThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseManualTime();

// MS-BFS vs sequential split check: drifting blobs generate frequent
// ex-core groups; this measures the full update with each strategy.
void BM_SplitCheckStrategy(benchmark::State& state) {
  const bool use_msbfs = state.range(0) != 0;
  BlobsGenerator::Options o;
  o.num_blobs = 6;
  o.stddev = 0.3;
  o.drift = 0.05;
  o.seed = 17;
  BlobsGenerator source(o);
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  config.use_msbfs = use_msbfs;
  Disc method(2, config);
  CountBasedWindow window(4000, 200);
  while (!window.full()) {
    WindowDelta d = window.Advance(source.NextPoints(200));
    method.Update(d.incoming, d.outgoing);
  }
  for (auto _ : state) {
    WindowDelta d = window.Advance(source.NextPoints(200));
    method.Update(d.incoming, d.outgoing);
  }
  state.SetLabel(use_msbfs ? "ms-bfs" : "sequential");
}
BENCHMARK(BM_SplitCheckStrategy)->Arg(0)->Arg(1);


void BM_RTreeBulkLoad(benchmark::State& state) {
  const auto pts = RandomPoints(static_cast<std::size_t>(state.range(0)), 2,
                                100.0, 13);
  for (auto _ : state) {
    RTree tree(2);
    std::vector<Point> copy = pts;
    tree.BulkLoad(std::move(copy));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(10000)->Arg(100000);

void BM_RTreeKnn(benchmark::State& state) {
  const auto pts = RandomPoints(50000, 2, 100.0, 14);
  RTree tree(2);
  tree.BulkLoad(pts);
  Rng rng(15);
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Point c;
    c.dims = 2;
    c.x[0] = rng.Uniform(0.0, 100.0);
    c.x[1] = rng.Uniform(0.0, 100.0);
    benchmark::DoNotOptimize(tree.NearestNeighbors(c, k));
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(1)->Arg(8)->Arg(64);

void BM_SplitPolicyRangeSearch(benchmark::State& state) {
  const SplitPolicy policy = state.range(0) != 0 ? SplitPolicy::kRStar
                                                 : SplitPolicy::kQuadratic;
  Rng build_rng(16);
  RTree tree(2, 16, policy);
  for (PointId id = 0; id < 30000; ++id) {
    Point p;
    p.id = id;
    p.dims = 2;
    const double cx = 3.0 * static_cast<double>(build_rng.UniformInt(0, 9));
    p.x[0] = cx + build_rng.Normal(0.0, 0.2);
    p.x[1] = cx + build_rng.Normal(0.0, 0.2);
    tree.Insert(p);
  }
  Rng rng(17);
  std::size_t found = 0;
  for (auto _ : state) {
    Point c;
    c.dims = 2;
    c.x[0] = rng.Uniform(0.0, 28.0);
    c.x[1] = rng.Uniform(0.0, 28.0);
    tree.RangeSearch(c, 0.5, [&](PointId, const Point&) { ++found; });
  }
  benchmark::DoNotOptimize(found);
  state.SetLabel(policy == SplitPolicy::kRStar ? "r-star" : "quadratic");
}
BENCHMARK(BM_SplitPolicyRangeSearch)->Arg(0)->Arg(1);

void BM_DiscCheckpointRoundTrip(benchmark::State& state) {
  BlobsGenerator::Options o;
  o.seed = 18;
  BlobsGenerator source(o);
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  Disc method(2, config);
  method.Update(source.NextPoints(static_cast<std::size_t>(state.range(0))),
                {});
  for (auto _ : state) {
    std::stringstream buffer;
    const bool saved = method.SaveCheckpoint(buffer).ok();
    Disc restored(2, config);
    const bool loaded = restored.LoadCheckpoint(buffer).ok();
    benchmark::DoNotOptimize(saved);
    benchmark::DoNotOptimize(loaded);
    benchmark::DoNotOptimize(restored.window_size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiscCheckpointRoundTrip)->Arg(5000)->Arg(20000);

// Index-probing DISC vs the materialized-graph variant on one slide.
void BM_GraphVsIndexSlide(benchmark::State& state) {
  const bool graph = state.range(0) != 0;
  auto spec = bench::DtgSpec(0.5);
  const std::size_t stride = spec.window / 20;
  auto source = spec.make(1234);
  DiscConfig config;
  config.eps = spec.eps;
  config.tau = spec.tau;
  std::unique_ptr<StreamClusterer> method;
  if (graph) {
    method = std::make_unique<GraphDisc>(spec.dims, config);
  } else {
    method = std::make_unique<Disc>(spec.dims, config);
  }
  CountBasedWindow window(spec.window, stride);
  while (!window.full()) {
    WindowDelta d = window.Advance(source->NextPoints(stride));
    method->Update(d.incoming, d.outgoing);
  }
  for (auto _ : state) {
    WindowDelta d = window.Advance(source->NextPoints(stride));
    method->Update(d.incoming, d.outgoing);
  }
  state.SetLabel(graph ? "graph" : "index");
}
BENCHMARK(BM_GraphVsIndexSlide)->Arg(0)->Arg(1);

// Cost of the telemetry plane on the hot slide path (docs/OBSERVABILITY.md,
// bench/results/telemetry_overhead.md). Arg selects the plane depth:
//   0  bare pipeline — no recorder, no registry
//   1  + MetricsObserver folding every SlideReport into a registry
//   2  + embedded HTTP server with a background thread scraping GET
//      /metrics at 10 Hz while the pipeline slides
// The registry's fields are relaxed atomics, so a scrape never takes a
// lock the slide path contends on — modes 1 and 2 should be within noise
// of each other (the acceptance bar is <= 2% over mode 1).
void BM_ObsScrapeOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  BlobsGenerator::Options gen;
  gen.dims = 2;
  gen.num_blobs = 5;
  gen.stddev = 0.3;
  gen.noise_fraction = 0.1;
  gen.drift = 0.05;
  gen.seed = 99;
  BlobsGenerator stream(gen);
  DiscConfig config;
  config.eps = 0.4;
  config.tau = 5;
  Disc method(2, config);
  StreamingPipeline pipeline(&stream, &method, /*window_size=*/2000,
                             /*stride=*/200);

  obs::MetricsRegistry registry;
  obs::MetricsObserver::Options obs_options;
  obs_options.disc_metrics = &method.last_metrics();
  obs::MetricsObserver metrics(&registry, obs_options);

  obs::HttpServerOptions server_options;
  server_options.metrics = &registry;
  obs::HttpServer server(server_options);
  std::atomic<bool> stop{false};
  std::thread scraper;
  if (mode == 2) {
    // The server's start/stop info lines would interleave with the
    // benchmark table on stderr.
    obs::SetLogLevel(obs::LogLevel::kWarn);
    if (!server.Start().ok()) {
      state.SkipWithError("telemetry server failed to bind");
      return;
    }
    scraper = std::thread([&server, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        int status = 0;
        std::string body = obs::HttpGet(server.port(), "/metrics", &status);
        benchmark::DoNotOptimize(body.size());
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
  }

  pipeline.Run(10);  // fill the window before timing
  for (auto _ : state) {
    pipeline.Run(1, mode >= 1 ? metrics.AsObserver() : nullptr);
  }
  state.SetItemsProcessed(state.iterations() * 200);
  state.SetLabel(mode == 0   ? "bare"
                 : mode == 1 ? "recorder"
                             : "recorder+scrape10hz");

  if (mode == 2) {
    stop.store(true, std::memory_order_relaxed);
    scraper.join();
    server.Stop();
  }
}
BENCHMARK(BM_ObsScrapeOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace disc

BENCHMARK_MAIN();
