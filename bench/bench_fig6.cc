// Figure 6: effect of the distance threshold (eps) and the density threshold
// (tau) on the elapsed time of the three exact incremental methods, on the
// DTG analogue with the stride fixed at 5% of the window.

#include <cstdio>

#include "baselines/extra_n.h"
#include "baselines/inc_dbscan.h"
#include "bench/datasets.h"
#include "core/disc.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace disc {
namespace {

void RunOne(const bench::DatasetSpec& spec, double eps, std::uint32_t tau,
            int slides, Table* table, const std::string& swept,
            const std::string& value) {
  const std::size_t stride = std::max<std::size_t>(1, spec.window / 20);
  auto source = spec.make(1234);
  StreamData data = MakeStreamData(*source, spec.window, stride, 1, slides);

  DiscConfig config;
  config.eps = eps;
  config.tau = tau;
  Disc disc_method(spec.dims, config);
  const double disc_ms =
      RunMethod(data, &disc_method, MeasureOptions{}).avg_update_ms;

  IncDbscan inc(spec.dims, config);
  const double inc_ms = RunMethod(data, &inc, MeasureOptions{}).avg_update_ms;

  ExtraN extra(spec.dims, eps, tau, spec.window, stride);
  const double extra_ms =
      RunMethod(data, &extra, MeasureOptions{}).avg_update_ms;

  table->AddRow({swept, value, Table::Num(disc_ms, 2), Table::Num(inc_ms, 2),
                 Table::Num(extra_ms, 2)});
}

void Run(double scale, int slides) {
  const bench::DatasetSpec spec = bench::DtgSpec(scale);
  Table table({"swept", "value", "DISC_ms", "IncDBSCAN_ms", "EXTRA-N_ms"});

  // (a) Varying eps around the DTG default (0.02), fixed tau.
  for (double eps : {0.005, 0.01, 0.02, 0.04, 0.08}) {
    RunOne(spec, eps, spec.tau, slides, &table, "eps", Table::Num(eps, 3));
  }
  // (b) Varying tau around the default (14), fixed eps.
  for (std::uint32_t tau : {4u, 7u, 14u, 28u, 56u}) {
    RunOne(spec, spec.eps, tau, slides, &table, "tau", std::to_string(tau));
  }

  std::printf(
      "== Fig. 6: threshold effects on DTG (elapsed ms per slide, 5%% "
      "stride) ==\n%s\n",
      table.ToText().c_str());
  std::printf("CSV:\n%s", table.ToCsv().c_str());
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  disc::Run(args.scale, args.slides);
  return 0;
}
