// Per-phase cost profile of DISC on every dataset analogue: where does a
// slide's time go (COLLECT density maintenance vs. ex-core split checks vs.
// neo-core merges vs. the Sec.-V recheck), across stride sizes. Not a paper
// figure — an engineering companion to Figs. 4/7 that shows *why* the curves
// bend: COLLECT dominates at tiny strides (cost ∝ stride), while the CLUSTER
// phases grow with the amount of cluster evolution per slide.

#include <cstdio>

#include "bench/datasets.h"
#include "core/disc.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

void Run(double scale, int slides) {
  Table table({"dataset", "stride%", "collect_ms", "ex_ms", "neo_ms",
               "recheck_ms", "total_ms", "reconciliations"});
  for (const bench::DatasetSpec& spec : bench::StandardDatasets(scale)) {
    for (double ratio : {0.01, 0.05, 0.25}) {
      const std::size_t stride = std::max<std::size_t>(
          1, static_cast<std::size_t>(spec.window * ratio));
      auto source = spec.make(1234);
      DiscConfig config;
      config.eps = spec.eps;
      config.tau = spec.tau;
      Disc method(spec.dims, config);
      CountBasedWindow window(spec.window, stride);

      double collect = 0, ex = 0, neo = 0, recheck = 0;
      std::uint64_t reconciliations = 0;
      int measured = 0;
      const std::size_t fill = (spec.window + stride - 1) / stride;
      for (std::size_t s = 0; s < fill + 1 + static_cast<std::size_t>(slides);
           ++s) {
        WindowDelta d = window.Advance(source->NextPoints(stride));
        method.Update(d.incoming, d.outgoing);
        if (s < fill + 1) continue;
        const DiscMetrics& m = method.last_metrics();
        collect += m.collect_ms;
        ex += m.ex_phase_ms;
        neo += m.neo_phase_ms;
        recheck += m.recheck_ms;
        reconciliations += m.survivor_reconciliations;
        ++measured;
      }
      const double n = static_cast<double>(measured);
      table.AddRow({spec.name, Table::Num(ratio * 100.0, 0),
                    Table::Num(collect / n, 2), Table::Num(ex / n, 2),
                    Table::Num(neo / n, 2), Table::Num(recheck / n, 2),
                    Table::Num((collect + ex + neo + recheck) / n, 2),
                    std::to_string(reconciliations)});
    }
  }
  std::printf("== DISC per-phase cost profile ==\n%s\n", table.ToText().c_str());
  std::printf("CSV:\n%s", table.ToCsv().c_str());
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  disc::Run(args.scale, args.slides);
  return 0;
}
