// Per-phase cost profile of DISC on every dataset analogue: where does a
// slide's time go (COLLECT density maintenance vs. ex-core split checks vs.
// neo-core merges vs. the Sec.-V recheck), across stride sizes. Not a paper
// figure — an engineering companion to Figs. 4/7 that shows *why* the curves
// bend: COLLECT dominates at tiny strides (cost ∝ stride), while the CLUSTER
// phases grow with the amount of cluster evolution per slide.
//
// Timing comes from SlideReport::phases, the clusterer-agnostic per-phase
// breakdown the pipeline surfaces — no downcasting to Disc for the table.
//
// Extra flags (on top of eval/runner's --scale/--slides):
//   --dataset=NAME     profile only that dataset analogue
//   --telemetry=PATH   after the run, export the aggregated metrics
//                      registry as Prometheus text exposition
// bench/results/telemetry_baseline.prom is a committed snapshot produced
// this way; see docs/OBSERVABILITY.md.

#include <cstdio>
#include <fstream>
#include <string>

#include "bench/datasets.h"
#include "core/disc.h"
#include "core/pipeline.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "obs/metrics_registry.h"
#include "obs/sinks.h"

namespace disc {
namespace {

bool Run(double scale, int slides, const std::string& dataset_filter,
         const std::string& telemetry_path) {
  // One registry across all datasets/strides: the exported counters are
  // whole-run totals and the histograms whole-run latency distributions.
  obs::MetricsRegistry registry;
  bool matched_any = false;
  Table table({"dataset", "stride%", "collect_ms", "ex_ms", "neo_ms",
               "recheck_ms", "total_ms", "relabeled", "reconciliations"});
  for (const bench::DatasetSpec& spec : bench::StandardDatasets(scale)) {
    if (!dataset_filter.empty() && spec.name != dataset_filter) continue;
    matched_any = true;
    for (double ratio : {0.01, 0.05, 0.25}) {
      const std::size_t stride = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(spec.window) * ratio));
      auto source = spec.make(1234);
      DiscConfig config;
      config.eps = spec.eps;
      config.tau = spec.tau;
      Disc method(spec.dims, config);
      StreamingPipeline pipeline(source.get(), &method, spec.window, stride);
      obs::MetricsObserver::Options obs_options;
      obs_options.disc_metrics = &method.last_metrics();
      obs::MetricsObserver metrics(&registry, obs_options);

      // Fill the window, then measure steady-state slides.
      const std::size_t fill = (spec.window + stride - 1) / stride + 1;
      pipeline.Run(fill);

      double collect = 0, ex = 0, neo = 0, recheck = 0;
      std::uint64_t relabeled = 0;
      std::uint64_t reconciliations = 0;
      int measured = 0;
      pipeline.Run(static_cast<std::size_t>(slides),
                   [&](const SlideReport& report) {
                     collect += report.phases.collect_ms;
                     ex += report.phases.ex_phase_ms;
                     neo += report.phases.neo_phase_ms;
                     recheck += report.phases.recheck_ms;
                     relabeled += report.relabeled;
                     // The one Disc-only counter in the table.
                     reconciliations +=
                         method.last_metrics().survivor_reconciliations;
                     ++measured;
                     return metrics(report);
                   });
      const double n = static_cast<double>(measured);
      table.AddRow({spec.name, Table::Num(ratio * 100.0, 0),
                    Table::Num(collect / n, 2), Table::Num(ex / n, 2),
                    Table::Num(neo / n, 2), Table::Num(recheck / n, 2),
                    Table::Num((collect + ex + neo + recheck) / n, 2),
                    std::to_string(relabeled),
                    std::to_string(reconciliations)});
    }
  }
  if (!matched_any) {
    std::fprintf(stderr, "bench_profile: no dataset named '%s'; known:",
                 dataset_filter.c_str());
    for (const bench::DatasetSpec& spec : bench::StandardDatasets(scale)) {
      std::fprintf(stderr, " %s", spec.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return false;
  }
  std::printf("== DISC per-phase cost profile ==\n%s\n", table.ToText().c_str());
  std::printf("CSV:\n%s", table.ToCsv().c_str());
  if (!telemetry_path.empty()) {
    std::ofstream out(telemetry_path);
    out << "# DISC bench_profile telemetry (Prometheus text exposition).\n"
        << "# disc_probe_*/disc_points_* counters are workload-deterministic;"
           "\n"
        << "# *_ms histogram summaries are wall-clock and machine-dependent.\n";
    registry.WritePrometheus(out);
    std::printf("wrote telemetry (%zu metrics) to %s\n", registry.size(),
                telemetry_path.c_str());
  }
  return true;
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  // bench::ParseArgs ignores flags it does not know; scan for ours here.
  std::string dataset_filter;
  std::string telemetry_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--dataset=", 0) == 0) {
      dataset_filter = arg.substr(10);
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_path = arg.substr(12);
    }
  }
  return disc::Run(args.scale, args.slides, dataset_filter, telemetry_path)
             ? 0
             : 1;
}
