// Table II: threshold values and window sizes per dataset, plus measured
// sanity statistics (average eps-neighborhood size, cluster count, and
// core/noise fractions from a fresh DBSCAN over one full window) that show
// each synthetic analogue sits in the same density regime as the paper's
// real dataset.

#include <cstdio>
#include <unordered_set>

#include "baselines/dbscan.h"
#include "bench/datasets.h"
#include "eval/kdistance.h"
#include "eval/table.h"
#include "index/grid_index.h"

namespace disc {
namespace {

void Run(double scale) {
  Table table({"dataset", "dims", "tau", "eps", "kdist_eps", "window",
               "avg|N_eps|", "clusters", "core%", "noise%"});
  for (const bench::DatasetSpec& spec : bench::StandardDatasets(scale)) {
    auto source = spec.make(42);
    std::vector<Point> window;
    window.reserve(spec.window);
    for (std::size_t i = 0; i < spec.window; ++i) {
      window.push_back(source->Next().point);
    }
    // Average eps-neighborhood cardinality (including self).
    GridIndex grid(spec.dims, spec.eps);
    for (const Point& p : window) grid.Insert(p);
    double total_neighbors = 0.0;
    for (const Point& p : window) {
      total_neighbors += static_cast<double>(grid.RangeCount(p, spec.eps));
    }
    const double avg_n = total_neighbors / static_cast<double>(window.size());

    // The paper picks eps from the K-distance graph for GeoLife/COVID/IRIS;
    // print what that method suggests here for comparison.
    const ParameterSuggestion suggested =
        SuggestParameters(window, spec.tau - 1);

    const DbscanResult result = RunDbscan(window, spec.eps, spec.tau);
    std::size_t cores = 0, noise = 0;
    for (Category c : result.snapshot.categories) {
      if (c == Category::kCore) ++cores;
      if (c == Category::kNoise) ++noise;
    }
    table.AddRow({spec.name, std::to_string(spec.dims),
                  std::to_string(spec.tau), Table::Num(spec.eps, 3),
                  Table::Num(suggested.eps, 3),
                  std::to_string(spec.window), Table::Num(avg_n, 1),
                  std::to_string(result.snapshot.NumClusters()),
                  Table::Num(100.0 * static_cast<double>(cores) /
                                 static_cast<double>(window.size()),
                             1),
                  Table::Num(100.0 * static_cast<double>(noise) /
                                 static_cast<double>(window.size()),
                             1)});
  }
  std::printf("== Table II: threshold values and window sizes ==\n%s\n",
              table.ToText().c_str());
  std::printf("CSV:\n%s", table.ToCsv().c_str());
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  disc::Run(args.scale);
  return 0;
}
