// Ingest-plane benchmarks (google-benchmark): what the binary-framed TCP
// plane costs on top of in-process feeding. BM_IngestThroughput drives a
// full loopback stack — BlobsGenerator → IngestClient → IngestServer →
// DiscEngine — while BM_WireEncodeFeedSlide / BM_WireDecodeFeedSlide
// isolate the codec so the wire share of the gap is attributable.
// Numbers and commentary live in bench/results/ingest_throughput.md.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/disc_engine.h"
#include "net/ingest_client.h"
#include "net/ingest_server.h"
#include "net/wire.h"
#include "stream/blobs_generator.h"

namespace disc {
namespace {

BlobsGenerator::Options StreamOptions(std::uint64_t seed) {
  BlobsGenerator::Options o;
  o.dims = 2;
  o.num_blobs = 4;
  o.extent = 8.0;
  o.stddev = 0.3;
  o.noise_fraction = 0.1;
  o.drift = 0.05;
  o.seed = seed;
  return o;
}

net::CreateSessionRequest BenchSession(std::size_t stride) {
  net::CreateSessionRequest request;
  request.name = "bench";
  request.dims = 2;
  request.window_size = 4 * stride;
  request.stride = stride;
  request.eps = 0.4;
  request.tau = 5;
  return request;
}

// One slide per iteration over the loopback socket, drained whenever the
// admission bound pushes back — so the measured rate includes the real
// backpressure protocol, not an unbounded queue. Args: {lanes, stride}.
void BM_IngestThroughput(benchmark::State& state) {
  const auto lanes = static_cast<std::uint32_t>(state.range(0));
  const auto stride = static_cast<std::size_t>(state.range(1));

  EngineOptions engine_options;
  engine_options.num_threads = lanes;
  DiscEngine engine(engine_options);
  net::IngestServerOptions server_options;
  server_options.engine = &engine;
  server_options.worker_threads = lanes;
  server_options.max_pending_slides = 64;
  net::IngestServer server(server_options);
  if (!server.Start().ok()) {
    state.SkipWithError("ingest server failed to start");
    return;
  }
  net::IngestClientOptions client_options;
  client_options.port = server.port();
  net::IngestClient client(client_options);
  if (!client.Connect().ok() ||
      !client.CreateSession(BenchSession(stride)).ok()) {
    state.SkipWithError("ingest client failed to connect");
    return;
  }

  BlobsGenerator stream(StreamOptions(7));
  for (auto _ : state) {
    const std::vector<Point> slide = stream.NextPoints(stride);
    for (;;) {
      bool busy = false;
      const Status fed = client.FeedSlide("bench", slide, &busy);
      if (fed.ok()) break;
      if (!busy) {
        state.SkipWithError(fed.message().c_str());
        return;
      }
      if (!client.Drain().ok()) {
        state.SkipWithError("drain failed");
        return;
      }
    }
  }
  static_cast<void>(client.Drain());
  client.Close();
  server.Stop();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stride));
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<std::int64_t>(net::kFrameHeaderBytes + 4 + 5 + 1 + 4 +
                                stride * (8 + 2 * 8)));
}
BENCHMARK(BM_IngestThroughput)
    ->Args({1, 200})
    ->Args({2, 200})
    ->Args({4, 200})
    ->Args({2, 1000})
    ->Unit(benchmark::kMicrosecond);

void BM_WireEncodeFeedSlide(benchmark::State& state) {
  BlobsGenerator stream(StreamOptions(7));
  net::FeedSlideRequest request;
  request.name = "bench";
  request.points = stream.NextPoints(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const std::string frame = net::EncodeFrame(
        net::MessageType::kFeedSlide, net::EncodeFeedSlide(request));
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireEncodeFeedSlide)->Arg(200)->Arg(1000);

void BM_WireDecodeFeedSlide(benchmark::State& state) {
  BlobsGenerator stream(StreamOptions(7));
  net::FeedSlideRequest request;
  request.name = "bench";
  request.points = stream.NextPoints(static_cast<std::size_t>(state.range(0)));
  const std::string payload = net::EncodeFeedSlide(request);
  for (auto _ : state) {
    net::FeedSlideRequest decoded;
    if (!net::DecodeFeedSlide(payload, &decoded).ok()) {
      state.SkipWithError("decode failed");
      return;
    }
    benchmark::DoNotOptimize(decoded.points.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireDecodeFeedSlide)->Arg(200)->Arg(1000);

}  // namespace
}  // namespace disc

BENCHMARK_MAIN();
