// Figure 4: relative speedup over DBSCAN with a varying size of stride
// (0.1% .. 25% of the window), for the four dataset analogues and the three
// exact incremental methods (DISC, IncDBSCAN, EXTRA-N).
//
// DBSCAN recomputes from scratch, so its per-slide cost is measured once per
// dataset (the paper makes the same observation: its execution time is
// unaffected by the stride-to-window ratio).

#include <cstdio>
#include <memory>

#include "baselines/dbscan.h"
#include "baselines/extra_n.h"
#include "baselines/inc_dbscan.h"
#include "bench/datasets.h"
#include "core/disc.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace disc {
namespace {

constexpr double kStrideRatios[] = {0.001, 0.005, 0.01, 0.05, 0.10, 0.25};

// EXTRA-N's predicted views explode for large window/stride ratios; beyond
// this estimated footprint we report DNF, as the paper does for its
// out-of-memory / timed-out runs.
constexpr std::size_t kExtraNMemoryCap = 2ULL << 30;  // 2 GiB.

void Run(double scale, int slides) {
  Table table({"dataset", "stride%", "DBSCAN_ms", "DISC_x", "IncDBSCAN_x",
               "EXTRA-N_x"});
  for (const bench::DatasetSpec& spec : bench::StandardDatasets(scale)) {
    // Baseline: DBSCAN once per dataset at the 5% stride.
    double dbscan_ms = 0.0;
    {
      const std::size_t stride =
          std::max<std::size_t>(
              1, static_cast<std::size_t>(static_cast<double>(spec.window) * 0.05));
      auto source = spec.make(1234);
      StreamData data = MakeStreamData(*source, spec.window, stride, 1, slides);
      DbscanClusterer dbscan(spec.dims, spec.eps, spec.tau);
      dbscan_ms = RunMethod(data, &dbscan, MeasureOptions{}).avg_update_ms;
    }

    for (double ratio : kStrideRatios) {
      const std::size_t stride = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(spec.window) * ratio));
      auto source = spec.make(1234);
      StreamData data = MakeStreamData(*source, spec.window, stride, 1, slides);

      DiscConfig config;
      config.eps = spec.eps;
      config.tau = spec.tau;
      Disc disc_method(spec.dims, config);
      const double disc_ms =
          RunMethod(data, &disc_method, MeasureOptions{}).avg_update_ms;

      IncDbscan inc(spec.dims, config);
      const double inc_ms = RunMethod(data, &inc, MeasureOptions{}).avg_update_ms;

      std::string extra_cell = "DNF";
      const std::size_t views = spec.window / stride;
      // Estimated footprint: counts + neighbor ids per point.
      const std::size_t estimate =
          spec.window * (views * sizeof(std::uint32_t) + 64 * sizeof(PointId));
      if (estimate <= kExtraNMemoryCap && spec.window % stride == 0) {
        ExtraN extra(spec.dims, spec.eps, spec.tau, spec.window, stride);
        const double extra_ms =
            RunMethod(data, &extra, MeasureOptions{}).avg_update_ms;
        extra_cell = Table::Num(dbscan_ms / extra_ms, 2);
      }

      table.AddRow({spec.name, Table::Num(ratio * 100.0, 1),
                    Table::Num(dbscan_ms, 2),
                    Table::Num(dbscan_ms / disc_ms, 2),
                    Table::Num(dbscan_ms / inc_ms, 2), extra_cell});
    }
  }
  std::printf(
      "== Fig. 4: relative speedup over DBSCAN, varying stride size ==\n%s\n",
      table.ToText().c_str());
  std::printf("CSV:\n%s", table.ToCsv().c_str());
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  disc::Run(args.scale, args.slides);
  return 0;
}
