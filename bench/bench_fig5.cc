// Figure 5: relative speedup over DBSCAN with a varying size of window
// (0.25x .. 4x of each dataset's default). The stride stays fixed at 5% of
// the *default* window, so growing the window shrinks the stride-to-window
// ratio — which is what drives EXTRA-N's predicted-view count up and
// reproduces its saturation/OOM behaviour at large windows. EXTRA-N rows
// show DNF where its state would exceed the memory cap, the analogue of the
// paper's out-of-memory / 10-hour kills.

#include <cstdio>

#include "baselines/dbscan.h"
#include "baselines/extra_n.h"
#include "baselines/inc_dbscan.h"
#include "bench/datasets.h"
#include "core/disc.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace disc {
namespace {

constexpr double kWindowFactors[] = {0.25, 0.5, 1.0, 2.0, 4.0};
constexpr std::size_t kExtraNMemoryCap = 2ULL << 30;

void Run(double scale, int slides) {
  Table table({"dataset", "window", "DBSCAN_ms", "DISC_x", "IncDBSCAN_x",
               "EXTRA-N_x"});
  for (const bench::DatasetSpec& spec : bench::StandardDatasets(scale)) {
    // Fixed absolute stride: 5% of the dataset's default window.
    const std::size_t stride = std::max<std::size_t>(1, spec.window / 20);
    for (double factor : kWindowFactors) {
      const std::size_t window =
          static_cast<std::size_t>(static_cast<double>(spec.window) * factor);
      auto source = spec.make(1234);
      StreamData data = MakeStreamData(*source, window, stride, 1, slides);

      DbscanClusterer dbscan(spec.dims, spec.eps, spec.tau);
      const double dbscan_ms =
          RunMethod(data, &dbscan, MeasureOptions{}).avg_update_ms;

      DiscConfig config;
      config.eps = spec.eps;
      config.tau = spec.tau;
      Disc disc_method(spec.dims, config);
      const double disc_ms =
          RunMethod(data, &disc_method, MeasureOptions{}).avg_update_ms;

      IncDbscan inc(spec.dims, config);
      const double inc_ms =
          RunMethod(data, &inc, MeasureOptions{}).avg_update_ms;

      std::string extra_cell = "DNF";
      const std::size_t views = window / stride;
      const std::size_t estimate =
          window * (views * sizeof(std::uint32_t) + 64 * sizeof(PointId));
      if (estimate <= kExtraNMemoryCap && window % stride == 0) {
        ExtraN extra(spec.dims, spec.eps, spec.tau, window, stride);
        const double extra_ms =
            RunMethod(data, &extra, MeasureOptions{}).avg_update_ms;
        extra_cell = Table::Num(dbscan_ms / extra_ms, 2);
      }

      table.AddRow({spec.name, std::to_string(window),
                    Table::Num(dbscan_ms, 2),
                    Table::Num(dbscan_ms / disc_ms, 2),
                    Table::Num(dbscan_ms / inc_ms, 2), extra_cell});
    }
  }
  std::printf(
      "== Fig. 5: relative speedup over DBSCAN, varying window size ==\n%s\n",
      table.ToText().c_str());
  std::printf("CSV:\n%s", table.ToCsv().c_str());
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  disc::Run(args.scale, args.slides);
  return 0;
}
