// Figure 12: illustration of the clusters found in Maze and DTG by DISC,
// EDMStream, and DBSTREAM. Writes one labeled CSV per (dataset, method) for
// plotting and prints a summary (cluster count + ARI against ground truth /
// DBSCAN labels). DISC's output is also checked to be exactly DBSCAN's, the
// paper's "same clusters as DBSCAN" observation for Figs. 12(d)-(f).

#include <cstdio>
#include <memory>

#include "baselines/dbscan.h"
#include "bench/datasets.h"
#include "eval/ari.h"
#include "eval/equivalence.h"
#include "eval/partition.h"
#include "eval/table.h"
#include "stream/clusterer_factory.h"
#include "stream/csv.h"
#include "stream/sliding_window.h"

namespace disc {
namespace {

void Run(double scale) {
  Table table({"dataset", "method", "clusters", "ARI", "exact_vs_DBSCAN"});
  struct Target {
    bench::DatasetSpec spec;
    bool truth_from_generator;
  };
  std::vector<Target> targets;
  targets.push_back({bench::MazeSpec(scale, 24000), true});
  targets.push_back({bench::DtgSpec(scale), false});

  for (const Target& target : targets) {
    const bench::DatasetSpec& spec = target.spec;
    const std::size_t stride = std::max<std::size_t>(1, spec.window / 20);
    auto source = spec.make(77);

    const ClustererSpec cs = bench::TunedClustererSpec(spec, stride);
    const std::unique_ptr<StreamClusterer> disc_method =
        MakeClusterer("DISC", cs);
    const std::unique_ptr<StreamClusterer> dbs = MakeClusterer("DBSTREAM", cs);
    const std::unique_ptr<StreamClusterer> edm = MakeClusterer("EDMStream", cs);

    // Slide a few times past the fill so the picture shows a steady state.
    CountBasedWindow window(spec.window, stride);
    std::vector<LabeledPoint> labeled;
    const std::size_t total_slides = spec.window / stride + 4;
    for (std::size_t s = 0; s < total_slides; ++s) {
      std::vector<Point> batch;
      batch.reserve(stride);
      for (std::size_t i = 0; i < stride; ++i) {
        labeled.push_back(source->Next());
        batch.push_back(labeled.back().point);
      }
      WindowDelta delta = window.Advance(batch);
      disc_method->Update(delta.incoming, delta.outgoing);
      dbs->Update(delta.incoming, delta.outgoing);
      edm->Update(delta.incoming, delta.outgoing);
    }

    std::vector<Point> contents(window.contents().begin(),
                                window.contents().end());
    std::vector<PointId> ids;
    ids.reserve(contents.size());
    for (const Point& p : contents) ids.push_back(p.id);

    // Reference labels: generator truth for Maze, fresh DBSCAN for DTG.
    std::vector<ClusterId> reference;
    const DbscanResult dbscan = RunDbscan(contents, spec.eps, spec.tau);
    if (target.truth_from_generator) {
      reference.reserve(ids.size());
      const std::size_t base = labeled.size() - contents.size();
      for (std::size_t i = 0; i < contents.size(); ++i) {
        reference.push_back(labeled[base + i].true_label);
      }
    } else {
      reference = LabelsFor(dbscan.snapshot, ids);
    }

    StreamClusterer* methods[] = {disc_method.get(), dbs.get(), edm.get()};
    for (StreamClusterer* m : methods) {
      const ClusteringSnapshot snap = m->Snapshot();
      const std::vector<ClusterId> labels = LabelsFor(snap, ids);
      const double ari = AdjustedRandIndex(labels, reference);
      std::string exact = "-";
      if (m == disc_method.get()) {
        const EquivalenceResult eq =
            CheckSameClustering(snap, dbscan.snapshot, contents, spec.eps);
        exact = eq.ok ? "yes" : ("NO: " + eq.error);
      }
      const std::string file = "fig12_" + spec.name + "_" + m->name() + ".csv";
      WriteLabeledCsv(file, contents, labels);
      table.AddRow({spec.name, m->name(), std::to_string(snap.NumClusters()),
                    Table::Num(ari, 3), exact});
      std::printf("wrote %s\n", file.c_str());
    }
  }
  std::printf("\n== Fig. 12: clusters found in Maze and DTG ==\n%s\n",
              table.ToText().c_str());
  std::printf("CSV:\n%s", table.ToCsv().c_str());
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  disc::Run(args.scale);
  return 0;
}
