// Figure 10: DTG — clustering quality (ARI against fresh-DBSCAN labels, the
// paper's truth for this dataset) and per-point update latency with a
// varying window size, stride 5%. Same methods as Fig. 9.

#include <cstdio>
#include <memory>

#include "bench/datasets.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "stream/clusterer_factory.h"

namespace disc {
namespace {

void AddRow(Table* table, std::size_t window, const MethodStats& stats) {
  table->AddRow({std::to_string(window), stats.name,
                 Table::Num(stats.avg_ari_reference, 3),
                 Table::Num(stats.avg_purity_reference, 3),
                 Table::Num(stats.avg_nmi_reference, 3),
                 Table::Num(stats.per_point_latency_us, 2)});
}

void Run(double scale, int slides) {
  Table table({"window", "method", "ARI_vs_DBSCAN", "purity", "NMI", "latency_us/pt"});
  for (double factor : {0.25, 0.5, 1.0, 2.0}) {
    bench::DatasetSpec spec = bench::DtgSpec(scale);
    spec.window =
        static_cast<std::size_t>(static_cast<double>(spec.window) * factor);
    const std::size_t stride = std::max<std::size_t>(1, spec.window / 20);
    auto source = spec.make(1234);
    StreamData data =
        MakeStreamData(*source, spec.window, stride, 1, slides);
    const std::vector<ClusteringSnapshot> refs =
        DbscanReference(data, spec.eps, spec.tau, 1);
    MeasureOptions opts;
    opts.reference_snapshots = &refs;

    ClustererSpec cs = bench::TunedClustererSpec(spec, stride);
    const std::unique_ptr<StreamClusterer> disc_method =
        MakeClusterer("DISC", cs);
    AddRow(&table, spec.window, RunMethod(data, disc_method.get(), opts));

    for (double rho : {0.1, 0.001}) {
      cs.rho = rho;
      const std::unique_ptr<StreamClusterer> rho_method =
          MakeClusterer("rho-DBSCAN", cs);
      AddRow(&table, spec.window, RunMethod(data, rho_method.get(), opts));
    }

    const std::unique_ptr<StreamClusterer> dbs = MakeClusterer("DBSTREAM", cs);
    AddRow(&table, spec.window, RunMethod(data, dbs.get(), opts));

    const std::unique_ptr<StreamClusterer> edm = MakeClusterer("EDMStream", cs);
    AddRow(&table, spec.window, RunMethod(data, edm.get(), opts));
  }
  std::printf(
      "== Fig. 10: DTG — ARI vs DBSCAN labels and per-point update latency "
      "==\n%s\n",
      table.ToText().c_str());
  std::printf("CSV:\n%s", table.ToCsv().c_str());
}

}  // namespace
}  // namespace disc

int main(int argc, char** argv) {
  const disc::bench::BenchArgs args = disc::bench::ParseArgs(argc, argv);
  disc::Run(args.scale, args.slides);
  return 0;
}
